"""Unit tests for fault-ring geometry and the ring index."""

import pytest

from repro.faults import (
    FaultRingIndex,
    FaultSet,
    RingGeometryError,
    extract_fault_regions,
    rings_for_region,
    routing_planes,
)
from repro.topology import BiLink, Direction, Mesh, Torus


def region_of(network, fault_set):
    _blocked, regions = extract_fault_regions(network, fault_set)
    assert len(regions) == 1
    return regions[0]


class TestRoutingPlanes:
    def test_2d(self):
        assert routing_planes(2) == [frozenset({0, 1})]

    def test_3d(self):
        assert routing_planes(3) == [
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({0, 2}),
        ]

    def test_4d_adjacent_pairs_only(self):
        planes = routing_planes(4)
        assert frozenset({0, 1}) in planes and frozenset({3, 0}) in planes
        assert frozenset({0, 2}) not in planes
        assert len(planes) == 4


class TestRingGeometry2D:
    def test_node_block_ring_bounds(self):
        t = Torus(8, 2)
        region = region_of(t, FaultSet.of(t, nodes=[(3, 3), (4, 3), (3, 4), (4, 4)]))
        (ring,) = rings_for_region(t, region, 0)
        assert ring.lo == {0: 2, 1: 2} and ring.hi == {0: 5, 1: 5}
        assert ring.span_length(0) == 4

    def test_node_block_perimeter(self):
        t = Torus(8, 2)
        region = region_of(t, FaultSet.of(t, nodes=[(3, 3), (4, 3), (3, 4), (4, 4)]))
        (ring,) = rings_for_region(t, region, 0)
        nodes = ring.perimeter_nodes()
        assert len(nodes) == 12
        assert len(ring.perimeter_links()) == 12
        assert nodes[0] == (2, 2)  # cycle starts at the low corner
        # perimeter is a cycle of unit steps
        for a, b in zip(nodes, nodes[1:] + nodes[:1]):
            assert t.distance(a, b) == 1

    def test_single_node_ring_is_eight_cycle(self):
        t = Torus(8, 2)
        region = region_of(t, FaultSet.of(t, nodes=[(4, 4)]))
        (ring,) = rings_for_region(t, region, 0)
        assert len(ring.perimeter_nodes()) == 8

    def test_link_fault_six_ring(self):
        t = Torus(8, 2)
        region = region_of(t, FaultSet.of(t, links=[((2, 5), 0, Direction.POS)]))
        (ring,) = rings_for_region(t, region, 0)
        nodes = ring.perimeter_nodes()
        assert len(nodes) == 6
        assert (2, 5) in nodes and (3, 5) in nodes  # link endpoints are ON the ring
        assert ring.lo == {0: 2, 1: 4} and ring.hi == {0: 3, 1: 6}

    def test_wrapping_ring(self):
        t = Torus(8, 2)
        region = region_of(t, FaultSet.of(t, nodes=[(7, 2), (0, 2)]))
        (ring,) = rings_for_region(t, region, 0)
        assert ring.lo[0] == 6 and ring.hi[0] == 1
        assert ring.pos_in_span(0, 7) and ring.pos_in_span(0, 0)
        assert not ring.pos_in_span(0, 2)
        assert len(ring.perimeter_nodes()) == 2 * 4 + 2 * 3 - 4

    def test_on_ring_and_corners(self):
        t = Torus(8, 2)
        region = region_of(t, FaultSet.of(t, nodes=[(4, 4)]))
        (ring,) = rings_for_region(t, region, 0)
        assert ring.on_ring((3, 3)) and ring.is_corner((3, 3))
        assert ring.on_ring((4, 3)) and not ring.is_corner((4, 3))
        assert not ring.on_ring((4, 4))  # the faulty node itself
        assert not ring.on_ring((6, 6))

    def test_boundary_positions(self):
        t = Torus(8, 2)
        region = region_of(t, FaultSet.of(t, nodes=[(4, 4)]))
        (ring,) = rings_for_region(t, region, 0)
        # a DIM0+ message stands on the low column, DIM0- on the high one
        assert ring.boundary_position(0, Direction.POS) == 3
        assert ring.boundary_position(0, Direction.NEG) == 5
        assert ring.far_boundary_position(0, Direction.POS) == 5


class TestRingGeometryMesh:
    def test_interior_fault_ok(self):
        m = Mesh(8, 2)
        region = region_of(m, FaultSet.of(m, nodes=[(4, 4)]))
        (ring,) = rings_for_region(m, region, 0)
        assert len(ring.perimeter_nodes()) == 8

    def test_boundary_fault_rejected(self):
        m = Mesh(8, 2)
        region = region_of(m, FaultSet.of(m, nodes=[(0, 4)]))
        with pytest.raises(RingGeometryError):
            rings_for_region(m, region, 0)


class TestRingGeometry3D:
    def test_single_node_three_rings(self):
        t = Torus(6, 3)
        region = region_of(t, FaultSet.of(t, nodes=[(2, 3, 4)]))
        rings = rings_for_region(t, region, 0)
        assert len(rings) == 3
        planes = {tuple(sorted(r.plane)) for r in rings}
        assert planes == {(0, 1), (1, 2), (0, 2)}
        for ring in rings:
            assert len(ring.perimeter_nodes()) == 8

    def test_cube_block_rings_per_cross_section(self):
        t = Torus(6, 3)
        nodes = [(x, y, z) for x in (2, 3) for y in (2, 3) for z in (2, 3)]
        region = region_of(t, FaultSet(frozenset(nodes)))
        rings = rings_for_region(t, region, 0)
        # 2 cross-sections per plane type, 3 plane types
        assert len(rings) == 6

    def test_link_region_only_planes_containing_link_dim(self):
        t = Torus(6, 3)
        region = region_of(t, FaultSet.of(t, links=[((2, 3, 4), 1, Direction.POS)]))
        rings = rings_for_region(t, region, 0)
        planes = {tuple(sorted(r.plane)) for r in rings}
        assert planes == {(0, 1), (1, 2)}

    def test_same_region_rings_share_no_links(self):
        t = Torus(6, 3)
        region = region_of(t, FaultSet.of(t, nodes=[(2, 3, 4)]))
        rings = rings_for_region(t, region, 0)
        for i in range(len(rings)):
            for j in range(i + 1, len(rings)):
                assert not (rings[i].perimeter_links() & rings[j].perimeter_links())


class TestFaultRingIndex:
    def _index(self, network, fault_set):
        blocked, regions = extract_fault_regions(network, fault_set)
        return FaultRingIndex(network, regions), blocked

    def test_locate_region_node_fault(self):
        t = Torus(8, 2)
        index, _ = self._index(t, FaultSet.of(t, nodes=[(4, 4)]))
        assert index.locate_region((3, 4), 0, Direction.POS) == 0
        assert index.locate_region((4, 3), 1, Direction.POS) == 0
        assert index.locate_region((0, 0), 0, Direction.POS) is None

    def test_locate_region_link_fault(self):
        t = Torus(8, 2)
        index, _ = self._index(t, FaultSet.of(t, links=[((2, 5), 0, Direction.POS)]))
        assert index.locate_region((2, 5), 0, Direction.POS) == 0
        assert index.locate_region((3, 5), 0, Direction.NEG) == 0
        assert index.locate_region((2, 4), 1, Direction.POS) is None

    def test_locate_region_wraparound_link(self):
        t = Torus(8, 2)
        index, _ = self._index(t, FaultSet.of(t, links=[((7, 5), 0, Direction.POS)]))
        assert index.locate_region((7, 5), 0, Direction.POS) == 0
        assert index.locate_region((0, 5), 0, Direction.NEG) == 0

    def test_ring_for(self):
        t = Torus(6, 3)
        index, _ = self._index(t, FaultSet.of(t, nodes=[(2, 3, 4)]))
        ring = index.ring_for(0, (0, 1), (1, 3, 4))
        assert tuple(sorted(ring.plane)) == (0, 1)
        with pytest.raises(RingGeometryError):
            index.ring_for(0, (0, 1), (1, 3, 5))  # wrong cross-section

    def test_overlap_detection(self):
        t = Torus(8, 2)
        # two adjacent single-node faults whose rings share links
        index, _ = self._index(t, FaultSet(frozenset({(2, 2), (3, 4)})))
        assert index.overlapping_ring_pairs()

    def test_no_overlap_when_far(self):
        t = Torus(8, 2)
        index, _ = self._index(t, FaultSet(frozenset({(1, 1), (5, 5)})))
        assert not index.overlapping_ring_pairs()

    def test_rings_healthy(self):
        t = Torus(8, 2)
        fs = FaultSet(frozenset({(2, 2)}))
        index, blocked = self._index(t, fs)
        assert index.rings_healthy(blocked)
        # a link fault lying on the ring makes it unhealthy
        bad = FaultSet.of(t, nodes=[(2, 2)], links=[((1, 1), 0, Direction.POS)])
        index2, _ = self._index(t, bad)
        assert not index2.rings_healthy(bad)

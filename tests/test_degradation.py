"""Property tests for the degraded-mode convexification pipeline
(:func:`repro.faults.degrade_fault_pattern`): arbitrary fault patterns
converge to valid block fault sets, convex inputs pass through untouched,
and the sacrifice accounting is consistent.
"""

import random

import pytest

from repro.faults import (
    FaultGenerationError,
    FaultSet,
    NetworkDisconnectedError,
    OverlapColoringError,
    RingGeometryError,
    blocking_waves,
    degrade_fault_pattern,
    generate_random_pattern,
    validate_fault_pattern,
)
from repro.topology import Mesh, Torus

FATAL = (RingGeometryError, NetworkDisconnectedError, OverlapColoringError, FaultGenerationError)


def topologies():
    return [Torus(16, 2), Mesh(16, 2)]


def diameter(topology):
    if isinstance(topology, Torus):
        return topology.dims * (topology.radix // 2)
    return topology.dims * (topology.radix - 1)


def sample_pattern(topology, rng):
    """An arbitrary raw pattern: nodes anywhere (interior-only on meshes,
    where boundary faults are fatal by the paper's model), plus links not
    incident to them."""
    if isinstance(topology, Mesh):
        candidates = [
            c for c in topology.nodes() if all(0 < x < topology.radix - 1 for x in c)
        ]
    else:
        candidates = list(topology.nodes())
    nodes = rng.sample(candidates, rng.randint(1, 6))
    node_set = set(nodes)
    links = [
        link
        for link in topology.links()
        if link.u not in node_set and link.v not in node_set
    ]
    return FaultSet(frozenset(nodes), frozenset(rng.sample(links, rng.randint(0, 2))))


class TestConvergence:
    @pytest.mark.parametrize("topology", topologies(), ids=["torus16", "mesh16"])
    def test_random_patterns_converge_within_diameter(self, topology):
        rng = random.Random(1234)
        checked = 0
        while checked < 25:
            faults = sample_pattern(topology, rng)
            try:
                scenario, info = degrade_fault_pattern(topology, faults)
            except FATAL:
                continue
            checked += 1
            # the result is a valid block fault set: the validator accepts
            # it verbatim, and re-degrading it is a no-op
            validate_fault_pattern(topology, scenario.faults, allow_blocking=True)
            again, info2 = degrade_fault_pattern(topology, scenario.faults)
            assert info2.convexify_steps == 0
            assert info2.degraded_nodes == ()
            assert again.faults == scenario.faults
            # sacrifices are exactly the nodes added beyond the request
            assert scenario.faults.node_faults >= faults.node_faults
            assert set(info.degraded_nodes) == (
                scenario.faults.node_faults - faults.node_faults
            )
            # the blocking rule alone reaches its fixpoint within the
            # network diameter (each wave grows the region by one hop)
            waves = blocking_waves(topology, scenario.faults.node_faults)
            assert len(waves) - 1 <= diameter(topology)

    @pytest.mark.parametrize("topology", topologies(), ids=["torus16", "mesh16"])
    def test_generator_round_trips(self, topology):
        rng = random.Random(7)
        for _ in range(5):
            scenario, info = generate_random_pattern(topology, 4, 1, rng)
            validate_fault_pattern(topology, scenario.faults, allow_blocking=True)
            assert len(info.degraded_nodes) == len(
                scenario.faults.node_faults - info.requested_nodes
            )

    def test_generator_deterministic_per_seed(self):
        topology = Torus(16, 2)
        a, _ = generate_random_pattern(topology, 4, 1, random.Random(42))
        b, _ = generate_random_pattern(topology, 4, 1, random.Random(42))
        assert a.faults == b.faults


class TestZeroDegradationPath:
    def test_convex_block_passes_through(self):
        topology = Torus(16, 2)
        faults = FaultSet.of(topology, nodes=[(4 + i, 6 + j) for i in range(2) for j in range(3)])
        reference = validate_fault_pattern(topology, faults, allow_blocking=True)
        scenario, info = degrade_fault_pattern(topology, faults)
        assert info.convexify_steps == 0
        assert info.degraded_nodes == ()
        assert info.condemned_rounds == {}
        assert scenario.faults == reference.faults
        assert len(scenario.ring_index.rings) == len(reference.ring_index.rings)
        assert scenario.region_layers == reference.region_layers

    def test_blockable_pattern_matches_validator(self):
        # an L-shape the blocking rule alone convexifies: the validator
        # (allow_blocking=True) and the degrade pipeline must agree
        topology = Torus(16, 2)
        faults = FaultSet.of(topology, nodes=[(4, 4), (5, 4), (5, 5)])
        reference = validate_fault_pattern(topology, faults, allow_blocking=True)
        scenario, info = degrade_fault_pattern(topology, faults)
        assert scenario.faults == reference.faults
        assert info.convexify_steps == 0
        assert set(info.degraded_nodes) == reference.faults.node_faults - faults.node_faults

    def test_fatal_patterns_still_raise(self):
        torus = Torus(16, 2)
        with pytest.raises(NetworkDisconnectedError):
            degrade_fault_pattern(
                torus, FaultSet.of(torus, nodes=[(0, j) for j in range(15)])
            )
        mesh = Mesh(16, 2)
        with pytest.raises((RingGeometryError, NetworkDisconnectedError)):
            degrade_fault_pattern(mesh, FaultSet.of(mesh, nodes=[(0, 0)]))


class TestMergeAccounting:
    def test_overlap_merge_reports_sacrifices(self):
        topology = Torus(16, 2)
        faults = FaultSet.of(topology, nodes=[(4, 4), (5, 6)])
        scenario, info = degrade_fault_pattern(topology, faults)
        assert len(scenario.ring_index.rings) == 1
        assert info.convexify_steps >= 1
        assert info.merges >= 1
        assert set(info.degraded_nodes) == {(4, 5), (4, 6), (5, 4), (5, 5)}
        # every sacrificed node carries a condemnation round >= 1 for the
        # staged detection schedule
        for coord in info.degraded_nodes:
            assert info.condemned_rounds[coord] >= 1

    def test_overlap_kept_when_allowed_and_colorable(self):
        topology = Torus(16, 2)
        faults = FaultSet.of(topology, nodes=[(4, 3), (5, 5)])
        scenario, info = degrade_fault_pattern(
            topology, faults, allow_overlapping_rings=True
        )
        assert len(scenario.ring_index.rings) == 2
        assert info.degraded_nodes == ()
        assert scenario.has_overlapping_rings

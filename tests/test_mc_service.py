"""Tests for ``mc`` jobs on the campaign service: spec validation,
end-to-end execution through the worker pool, the per-kind status
counters, and restart recovery of terminal mc jobs.  Kill-and-resume
mid-shard lives in tests/test_service_chaos.py (the chaos mix now
includes an mc job).
"""

import time

import pytest

from repro.mc import MCCell, MCPlan, MCSettings, run_plan
from repro.service import (
    CampaignService,
    JobSpec,
    JobStore,
    SpecError,
    deterministic_blob,
)
from repro.service.server import mc_result_payload


def small_plan(**overrides):
    base = dict(
        cells=(
            MCCell(radix=4, num_node_faults=1, num_link_faults=1),
            MCCell(radix=4, num_node_faults=1, num_link_faults=2, policy="ft"),
        ),
        settings=MCSettings(
            half_width=0.05, shard_size=20, max_shards=6, min_shards=2
        ),
        master_seed=1234,
    )
    base.update(overrides)
    return MCPlan(**base)


def mc_payload(label="mc-test", **overrides):
    return {"kind": "mc", "mc": small_plan(**overrides).to_payload(), "label": label}


def wait_terminal(record, timeout=120):
    deadline = time.monotonic() + timeout
    while not record.terminal and time.monotonic() < deadline:
        time.sleep(0.02)
    return record


class TestMCSpec:
    def test_round_trip_and_stable_id(self):
        spec = JobSpec.from_payload(mc_payload())
        again = JobSpec.from_canonical(spec.to_canonical())
        assert again == spec
        assert again.job_id() == spec.job_id()

    def test_no_static_tasks_but_a_budget(self):
        spec = JobSpec.from_payload(mc_payload())
        assert spec.build_tasks() == []
        # progress denominator: the shard-budget ceiling, not zero
        assert spec.task_total() == 2 * 6

    def test_describe_names_the_cells(self):
        assert "2 cell(s)" in JobSpec.from_payload(mc_payload()).describe()

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda p: p.pop("mc"), "mc"),
            (lambda p: p.update(mc="not-a-dict"), "mc"),
            (lambda p: p.update(rates=[0.004]), "rates"),
            (lambda p: p.update(config={"radix": 8}), "config"),
            (
                lambda p: p.update(campaign={"events": []}),
                "campaign",
            ),
            (lambda p: p.update(trace=True), "trace"),
        ],
    )
    def test_bad_mc_payloads_raise_spec_error(self, mutate, message):
        payload = mc_payload()
        mutate(payload)
        with pytest.raises(SpecError, match=message):
            JobSpec.from_payload(payload)

    def test_bad_plan_rejected_at_admission(self):
        payload = mc_payload()
        payload["mc"] = dict(payload["mc"])
        cells = [dict(c) for c in payload["mc"]["cells"]]
        cells[0]["policy"] = "no-such-policy"
        payload["mc"]["cells"] = cells
        with pytest.raises(SpecError, match="bad mc plan"):
            JobSpec.from_payload(payload)

    def test_non_mc_jobs_cannot_carry_a_plan(self):
        from repro.sim import SimulationConfig

        payload = {
            "kind": "sweep",
            "config": SimulationConfig(
                topology="torus", radix=6, dims=2, rate=0.004
            ).to_canonical(),
            "rates": [0.004],
            "mc": small_plan().to_payload(),
        }
        with pytest.raises(SpecError, match="only mc jobs"):
            JobSpec.from_payload(payload)


class TestMCService:
    def test_runs_to_done_and_matches_direct_run(self, tmp_path):
        service = CampaignService(tmp_path, jobs=2)
        try:
            record, created = service.submit(mc_payload())
            assert created is True
            wait_terminal(record)
            assert record.state == "done"

            result = service.job_store.load_result(record.job_id)
            # ground truth: the same plan run inline, no service at all
            direct = run_plan(small_plan(), jobs=1)
            expected = mc_result_payload(record.job_id, direct)
            assert deterministic_blob(result) == deterministic_blob(expected)

            # the tally log is the job's durable progress record
            assert service.job_store.tally_log_path(record.job_id).is_file()
            status = service.status()
            assert status["job_kinds"]["mc"]["done"] == 1
            assert status["stats"]["task_kinds"]["mc-shard"]["done"] > 0
        finally:
            service.stop()
            service.wait_drained(timeout=120)

    def test_resubmit_is_idempotent(self, tmp_path):
        service = CampaignService(tmp_path, jobs=1)
        try:
            record, _ = service.submit(mc_payload())
            wait_terminal(record)
            again, created = service.submit(mc_payload(label="other-label"))
            assert created is False
            assert again is record
        finally:
            service.stop()
            service.wait_drained(timeout=120)

    def test_restart_recovers_terminal_mc_job(self, tmp_path):
        first = CampaignService(tmp_path, jobs=1)
        try:
            record, _ = first.submit(mc_payload())
            wait_terminal(record)
            blob = deterministic_blob(first.job_store.load_result(record.job_id))
        finally:
            first.stop()
            first.wait_drained(timeout=120)

        second = CampaignService(tmp_path, jobs=1)
        try:
            recovered = second.get(record.job_id)
            assert recovered is not None
            assert recovered.state == "done"
            assert deterministic_blob(
                second.job_store.load_result(record.job_id)
            ) == blob
        finally:
            second.stop()
            second.wait_drained(timeout=120)

    def test_status_counts_kinds_separately(self, tmp_path):
        from repro.sim import SimulationConfig

        service = CampaignService(tmp_path, jobs=1)
        try:
            sweep = {
                "kind": "sweep",
                "config": SimulationConfig(
                    topology="torus",
                    radix=6,
                    dims=2,
                    rate=0.004,
                    warmup_cycles=100,
                    measure_cycles=200,
                    fault_percent=1,
                ).to_canonical(),
                "rates": [0.004],
            }
            record_a, _ = service.submit(sweep)
            record_b, _ = service.submit(mc_payload())
            wait_terminal(record_a)
            wait_terminal(record_b)
            kinds = service.status()["job_kinds"]
            assert kinds["sweep"]["done"] == 1
            assert kinds["mc"]["done"] == 1
        finally:
            service.stop()
            service.wait_drained(timeout=120)


class TestJobStoreTallyLog:
    def test_tally_log_path_lives_in_the_job_dir(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = "a" * 64
        path = store.tally_log_path(job_id)
        assert path.name == "mc.tallies.jsonl"
        assert path.parent == store.job_dir(job_id)

"""Tests for protocol message classes (virtual channel banks) and the
request-reply workload.

Section 2: "The Cray T3D actually simulates four virtual channels to
handle two distinct classes of messages with two virtual channels per
class."  We generalize: each protocol class gets a full bank of the
routing scheme's classes, so request-reply traffic cannot deadlock on
shared channels."""

import pytest

from repro.router import ChannelKind
from repro.router.messages import Message
from repro.sim import SimulationConfig, SimNetwork, Simulator


def build(**kwargs):
    defaults = dict(topology="torus", radix=8, dims=2, protocol_classes=2)
    defaults.update(kwargs)
    return SimNetwork(SimulationConfig(**defaults))


class TestBankStructure:
    def test_total_classes(self):
        net = build()
        assert net.base_classes == 4
        assert net.num_classes == 8
        for channel in net.channels:
            assert len(channel.vcs) == 8

    def test_mesh_banks(self):
        net = build(topology="mesh")
        assert net.base_classes == 2 and net.num_classes == 4

    def test_single_bank_default(self):
        net = SimNetwork(SimulationConfig(topology="torus", radix=8, dims=2))
        assert net.num_classes == net.base_classes == 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(protocol_classes=0)
        with pytest.raises(ValueError):
            SimulationConfig(request_reply=True, protocol_classes=1)


class TestBankResolution:
    def _message(self, net, src, dst, protocol):
        return Message(
            1, src, dst, 20, net.routing.initial_state(src, dst), 0, False,
            protocol=protocol,
        )

    def test_request_uses_bank_zero(self):
        net = build()
        node = net.nodes[(0, 0)]
        message = self._message(net, (0, 0), (3, 0), protocol=0)
        res = node.resolve(node.injection_module(), message, net.routing, "rank")
        assert all(c < 4 for c in res.classes)

    def test_reply_uses_bank_one(self):
        net = build()
        node = net.nodes[(0, 0)]
        message = self._message(net, (0, 0), (3, 0), protocol=1)
        res = node.resolve(node.injection_module(), message, net.routing, "rank")
        assert all(4 <= c < 8 for c in res.classes)

    def test_reply_bank_preserves_structure(self):
        """A protocol-1 message's class pattern is the protocol-0 pattern
        shifted by one bank, hop for hop."""
        net = build()
        from repro.analysis import channel_walk

        # monkey-free: walk a protocol-1 message manually through resolve
        src, dst = (0, 0), (3, 3)
        walk0 = channel_walk(net, src, dst)
        message = self._message(net, src, dst, protocol=1)
        node = net.nodes[src]
        module = node.injection_module()
        classes1 = []
        for _ in range(100):
            res = node.resolve(module, message, net.routing, False)
            classes1.append(res.classes)
            if res.channel.kind is ChannelKind.CONSUMPTION:
                break
            if res.commit_decision is not None:
                net.routing.commit_hop(message.route, node.coord, res.commit_decision)
                node = net.nodes[res.channel.dst_node]
            module = res.channel.dst_module
        # skip the injection entry of walk0; compare hop classes
        for (ch0, c0), c1 in zip(walk0[1:], classes1):
            if ch0.kind is ChannelKind.CONSUMPTION:
                assert set(c1) == {4, 5, 6, 7}
            else:
                assert tuple(c + 4 for c in c0) == c1

    def test_pass_through_stays_in_bank(self):
        net = build()
        node = net.nodes[(0, 0)]
        message = self._message(net, (0, 0), (0, 3), protocol=1)  # no dim0 hops
        res = node.resolve(node.injection_module(), message, net.routing, "rank")
        assert res.channel.kind is ChannelKind.INTERCHIP
        assert res.classes == (4, 5)


class TestRequestReplySimulation:
    def _config(self, **kwargs):
        defaults = dict(
            topology="torus", radix=8, dims=2, protocol_classes=2,
            request_reply=True, rate=0.008, warmup_cycles=400,
            measure_cycles=2_000,
        )
        defaults.update(kwargs)
        return SimulationConfig(**defaults)

    def test_replies_generated_and_drained(self):
        sim = Simulator(self._config())
        result = sim.run()
        sim.drain()
        assert sim.in_flight == 0
        # roughly as many replies as requests delivered
        assert result.delivered > 0

    def test_reply_messages_travel_reverse(self):
        sim = Simulator(self._config(rate=0.0))
        request = sim.inject_message((1, 1), (5, 5))
        for _ in range(2_000):
            sim.step()
            if sim.in_flight == 0 and not any(sim.queues.values()):
                break
        assert request.consumed_cycle is not None
        # a reply was created back to (1,1): total messages = 2
        assert sim._msg_counter == 2

    def test_faulty_network_request_reply(self):
        sim = Simulator(self._config(fault_percent=5, rate=0.006))
        result = sim.run()
        sim.drain()
        assert sim.in_flight == 0
        assert result.misrouted_messages > 0

    def test_deterministic(self):
        a = Simulator(self._config(seed=9)).run()
        b = Simulator(self._config(seed=9)).run()
        assert a.delivered == b.delivered

    def test_throughput_includes_replies(self):
        plain = Simulator(self._config(request_reply=False)).run()
        with_replies = Simulator(self._config()).run()
        # replies roughly double the delivered traffic at low load
        assert with_replies.delivered > 1.5 * plain.delivered

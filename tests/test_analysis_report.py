"""Unit tests for report formatting helpers."""

from repro.analysis import ascii_chart, format_table, latency_series, utilization_series
from repro.analysis.report import results_table
from repro.sim.metrics import SimulationResult


def result(rate=0.01, latency=100.0, bisection=100):
    return SimulationResult(
        topology="torus", radix=8, dims=2, router_model="pdr",
        timing_name="pipelined", fault_percent=0, rate=rate, message_length=20,
        num_vcs=4, seed=1, cycles=1000, generated=10, injected=10, delivered=10,
        delivered_flits=200, bisection_messages=bisection, bisection_bandwidth=32,
        avg_latency=latency, latency_ci=1.0, avg_queueing=0.0,
        misrouted_messages=0, avg_misroute_hops=0.0, final_source_queue=0,
        in_flight_at_end=0,
    )


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "--" in lines[1]
        assert lines[2].endswith("2.50")

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_wide_cells_expand_columns(self):
        text = format_table(["x"], [["a-very-long-cell"]])
        assert "a-very-long-cell" in text


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart({"s1": [(0, 0), (1, 1)], "s2": [(0, 1), (1, 0)]})
        assert "o=s1" in chart and "x=s2" in chart
        assert "o" in chart and "x" in chart

    def test_empty(self):
        assert ascii_chart({}) == "(no data)"

    def test_single_point(self):
        chart = ascii_chart({"s": [(1.0, 2.0)]})
        assert "o=s" in chart

    def test_axis_ranges_rendered(self):
        chart = ascii_chart({"s": [(0.0, 5.0), (2.0, 15.0)]}, x_label="load")
        assert "load [0.000 .. 2.000]" in chart
        assert "5.0 .. 15.0" in chart


class TestSeries:
    def test_latency_series(self):
        series = latency_series([result(rate=0.01, latency=50.0)])
        assert series == [(0.2, 50.0)]

    def test_utilization_series(self):
        series = utilization_series([result(bisection=160)])
        # 160/1000 msgs/cycle * 20 / 32 = 10%
        assert abs(series[0][1] - 10.0) < 1e-9

    def test_results_table_renders(self):
        text = results_table([result(), result(rate=0.02)])
        assert "rho_b %" in text
        assert text.count("\n") >= 3

"""Unit tests for random fault-pattern generation and validation."""

import random
import subprocess
import sys

import pytest

from repro.faults import (
    PAPER_FAULT_COUNTS,
    FaultSet,
    NonConvexFaultError,
    RingGeometryError,
    generate_fault_pattern,
    generate_random_pattern,
    paper_fault_scenario,
    scaled_fault_counts,
    validate_fault_pattern,
)
from repro.topology import Direction, Mesh, Torus


class TestValidation:
    def test_valid_pattern(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(2, 2)], links=[((5, 6), 1, Direction.POS)])
        scenario = validate_fault_pattern(t, fs)
        assert scenario.num_regions == 2

    def test_unblocked_pattern_rejected(self):
        t = Torus(8, 2)
        fs = FaultSet(frozenset({(2, 2), (3, 3)}))
        with pytest.raises(NonConvexFaultError):
            validate_fault_pattern(t, fs)

    def test_allow_blocking_expands(self):
        t = Torus(8, 2)
        fs = FaultSet(frozenset({(2, 2), (3, 3)}))
        scenario = validate_fault_pattern(t, fs, allow_blocking=True)
        assert len(scenario.faults.node_faults) == 4

    def test_overlapping_rings_rejected(self):
        t = Torus(8, 2)
        fs = FaultSet(frozenset({(2, 2), (3, 4)}))
        with pytest.raises(RingGeometryError):
            validate_fault_pattern(t, fs)

    def test_link_on_ring_rejected(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(2, 2)], links=[((1, 1), 0, Direction.POS)])
        with pytest.raises(RingGeometryError):
            validate_fault_pattern(t, fs)

    def test_fault_free(self):
        scenario = validate_fault_pattern(Torus(8, 2), FaultSet())
        assert scenario.num_regions == 0
        assert scenario.link_fault_percent(Torus(8, 2)) == 0.0


class TestGeneration:
    def test_deterministic_for_seed(self):
        t = Torus(16, 2)
        a = generate_fault_pattern(t, 4, 10, random.Random(3))
        b = generate_fault_pattern(t, 4, 10, random.Random(3))
        assert a.faults == b.faults

    def test_different_seeds_differ(self):
        t = Torus(16, 2)
        a = generate_fault_pattern(t, 4, 10, random.Random(3))
        b = generate_fault_pattern(t, 4, 10, random.Random(4))
        assert a.faults != b.faults

    def test_counts_respected(self):
        t = Torus(16, 2)
        scenario = generate_fault_pattern(t, 2, 3, random.Random(0))
        assert len(scenario.faults.node_faults) == 2
        assert len(scenario.faults.link_faults) == 3

    def test_rings_are_disjoint_and_healthy(self):
        t = Torus(16, 2)
        scenario = generate_fault_pattern(t, 4, 10, random.Random(1))
        assert not scenario.ring_index.overlapping_ring_pairs()
        assert scenario.ring_index.rings_healthy(scenario.faults)

    def test_mesh_generation_avoids_boundaries(self):
        m = Mesh(16, 2)
        scenario = generate_fault_pattern(m, 4, 10, random.Random(2))
        for coord in scenario.faults.node_faults:
            assert 0 < coord[0] < 15 and 0 < coord[1] < 15


class TestPaperScenarios:
    def test_counts_table(self):
        assert PAPER_FAULT_COUNTS[1] == (1, 1)
        assert PAPER_FAULT_COUNTS[5] == (4, 10)

    def test_percentages_on_16x16(self):
        t = Torus(16, 2)
        one = paper_fault_scenario(t, 1, random.Random(0))
        five = paper_fault_scenario(t, 5, random.Random(0))
        assert 0.8 < one.link_fault_percent(t) < 1.3
        assert 4.0 < five.link_fault_percent(t) < 6.0

    def test_zero_percent(self):
        t = Torus(16, 2)
        scenario = paper_fault_scenario(t, 0, random.Random(0))
        assert scenario.faults.empty

    def test_unknown_percent(self):
        with pytest.raises(ValueError):
            paper_fault_scenario(Torus(16, 2), 3, random.Random(0))

    def test_scaled_counts_smaller_network(self):
        t = Torus(8, 2)
        nodes, links = scaled_fault_counts(t, 5)
        fs = paper_fault_scenario(t, 5, random.Random(0))
        pct = fs.link_fault_percent(t)
        assert 3.0 < pct < 7.5
        assert nodes >= 0 and links >= 0

    def test_scaled_counts_16x16_match_paper(self):
        assert scaled_fault_counts(Torus(16, 2), 5) == (4, 10)
        assert scaled_fault_counts(Mesh(16, 2), 1) == (1, 1)


class TestScaledCountsEdges:
    def test_zero_percent_is_always_fault_free(self):
        for network in (Torus(4, 2), Torus(8, 2), Torus(16, 2), Mesh(16, 2)):
            assert scaled_fault_counts(network, 0) == (0, 0)

    def test_every_paper_percent_on_16x16(self):
        t = Torus(16, 2)
        for percent, counts in PAPER_FAULT_COUNTS.items():
            assert scaled_fault_counts(t, percent) == counts

    def test_small_networks_scale_down_but_stay_faulty(self):
        # a nonzero percentage must never round away to a fault-free
        # pattern, even on a 4x4 where 1% of 32 links is a fraction
        for radix in (4, 8):
            t = Torus(radix, 2)
            nodes, links = scaled_fault_counts(t, 1)
            assert nodes + links >= 1
            assert nodes * 2 * t.dims + links <= t.num_links()

    def test_link_fraction_tracks_the_target(self):
        t = Torus(8, 2)
        nodes, links = scaled_fault_counts(t, 5)
        implied = nodes * 2 * t.dims + links
        target = 0.05 * t.num_links()
        assert abs(implied - target) <= 2 * t.dims  # one node fault of slack

    def test_non_2d_radix_16_takes_the_scaled_path(self):
        # the paper table is specifically 16x16 (dims=2); a 16-ary
        # 3-cube must scale by its own link count instead
        t3 = Torus(16, 3)
        counts = scaled_fault_counts(t3, 5)
        assert counts != PAPER_FAULT_COUNTS[5]
        nodes, links = counts
        implied = nodes * 2 * t3.dims + links
        assert abs(implied - 0.05 * t3.num_links()) <= 2 * t3.dims


class TestRandomPattern:
    def test_k_zero_draws_the_empty_scenario(self):
        scenario, info = generate_random_pattern(Torus(8, 2), 0, 0, random.Random(1))
        assert scenario.faults.empty
        assert scenario.num_regions == 0
        assert not info.degraded_nodes
        assert info.merges == 0

    def test_k_at_documented_maximum(self):
        # the paper's heaviest scenario (5% on 16x16) must be drawable
        nodes, links = PAPER_FAULT_COUNTS[5]
        scenario, _ = generate_random_pattern(
            Torus(16, 2), nodes, links, random.Random(3)
        )
        # degradation may sacrifice extra nodes but never drops faults
        assert len(scenario.faults.node_faults) >= nodes

    def test_beyond_population_rejected(self):
        t = Torus(4, 2)
        with pytest.raises(ValueError):
            generate_random_pattern(t, t.num_nodes + 1, 0, random.Random(0))

    def test_seed_determinism_in_process(self):
        a, _ = generate_random_pattern(Torus(8, 2), 2, 2, random.Random(42))
        b, _ = generate_random_pattern(Torus(8, 2), 2, 2, random.Random(42))
        assert a.faults == b.faults

    def test_seed_determinism_across_processes(self):
        """random.Random(seed) is stable across interpreters, so the same
        seed must reproduce the same pattern in a fresh process."""
        script = (
            "import random\n"
            "from repro.faults import generate_random_pattern\n"
            "from repro.topology import Torus\n"
            "s, _ = generate_random_pattern(Torus(8, 2), 2, 2, random.Random(42))\n"
            "print(sorted(map(str, s.faults.node_faults)))\n"
            "print(sorted(map(str, s.faults.link_faults)))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        here, _ = generate_random_pattern(Torus(8, 2), 2, 2, random.Random(42))
        expected = (
            f"{sorted(map(str, here.faults.node_faults))}\n"
            f"{sorted(map(str, here.faults.link_faults))}\n"
        )
        assert out == expected

"""Unit tests for random fault-pattern generation and validation."""

import random

import pytest

from repro.faults import (
    PAPER_FAULT_COUNTS,
    FaultSet,
    NonConvexFaultError,
    RingGeometryError,
    generate_fault_pattern,
    paper_fault_scenario,
    scaled_fault_counts,
    validate_fault_pattern,
)
from repro.topology import Direction, Mesh, Torus


class TestValidation:
    def test_valid_pattern(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(2, 2)], links=[((5, 6), 1, Direction.POS)])
        scenario = validate_fault_pattern(t, fs)
        assert scenario.num_regions == 2

    def test_unblocked_pattern_rejected(self):
        t = Torus(8, 2)
        fs = FaultSet(frozenset({(2, 2), (3, 3)}))
        with pytest.raises(NonConvexFaultError):
            validate_fault_pattern(t, fs)

    def test_allow_blocking_expands(self):
        t = Torus(8, 2)
        fs = FaultSet(frozenset({(2, 2), (3, 3)}))
        scenario = validate_fault_pattern(t, fs, allow_blocking=True)
        assert len(scenario.faults.node_faults) == 4

    def test_overlapping_rings_rejected(self):
        t = Torus(8, 2)
        fs = FaultSet(frozenset({(2, 2), (3, 4)}))
        with pytest.raises(RingGeometryError):
            validate_fault_pattern(t, fs)

    def test_link_on_ring_rejected(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(2, 2)], links=[((1, 1), 0, Direction.POS)])
        with pytest.raises(RingGeometryError):
            validate_fault_pattern(t, fs)

    def test_fault_free(self):
        scenario = validate_fault_pattern(Torus(8, 2), FaultSet())
        assert scenario.num_regions == 0
        assert scenario.link_fault_percent(Torus(8, 2)) == 0.0


class TestGeneration:
    def test_deterministic_for_seed(self):
        t = Torus(16, 2)
        a = generate_fault_pattern(t, 4, 10, random.Random(3))
        b = generate_fault_pattern(t, 4, 10, random.Random(3))
        assert a.faults == b.faults

    def test_different_seeds_differ(self):
        t = Torus(16, 2)
        a = generate_fault_pattern(t, 4, 10, random.Random(3))
        b = generate_fault_pattern(t, 4, 10, random.Random(4))
        assert a.faults != b.faults

    def test_counts_respected(self):
        t = Torus(16, 2)
        scenario = generate_fault_pattern(t, 2, 3, random.Random(0))
        assert len(scenario.faults.node_faults) == 2
        assert len(scenario.faults.link_faults) == 3

    def test_rings_are_disjoint_and_healthy(self):
        t = Torus(16, 2)
        scenario = generate_fault_pattern(t, 4, 10, random.Random(1))
        assert not scenario.ring_index.overlapping_ring_pairs()
        assert scenario.ring_index.rings_healthy(scenario.faults)

    def test_mesh_generation_avoids_boundaries(self):
        m = Mesh(16, 2)
        scenario = generate_fault_pattern(m, 4, 10, random.Random(2))
        for coord in scenario.faults.node_faults:
            assert 0 < coord[0] < 15 and 0 < coord[1] < 15


class TestPaperScenarios:
    def test_counts_table(self):
        assert PAPER_FAULT_COUNTS[1] == (1, 1)
        assert PAPER_FAULT_COUNTS[5] == (4, 10)

    def test_percentages_on_16x16(self):
        t = Torus(16, 2)
        one = paper_fault_scenario(t, 1, random.Random(0))
        five = paper_fault_scenario(t, 5, random.Random(0))
        assert 0.8 < one.link_fault_percent(t) < 1.3
        assert 4.0 < five.link_fault_percent(t) < 6.0

    def test_zero_percent(self):
        t = Torus(16, 2)
        scenario = paper_fault_scenario(t, 0, random.Random(0))
        assert scenario.faults.empty

    def test_unknown_percent(self):
        with pytest.raises(ValueError):
            paper_fault_scenario(Torus(16, 2), 3, random.Random(0))

    def test_scaled_counts_smaller_network(self):
        t = Torus(8, 2)
        nodes, links = scaled_fault_counts(t, 5)
        fs = paper_fault_scenario(t, 5, random.Random(0))
        pct = fs.link_fault_percent(t)
        assert 3.0 < pct < 7.5
        assert nodes >= 0 and links >= 0

    def test_scaled_counts_16x16_match_paper(self):
        assert scaled_fault_counts(Torus(16, 2), 5) == (4, 10)
        assert scaled_fault_counts(Mesh(16, 2), 1) == (1, 1)

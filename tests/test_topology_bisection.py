"""Unit tests for bisection bandwidth and bisection-message accounting."""

from repro.faults import FaultSet
from repro.topology import (
    Mesh,
    Torus,
    bisection_bandwidth,
    bisection_links,
    is_bisection_message,
    side_of_bisection,
)


class TestBisectionBandwidth:
    def test_mesh_16(self):
        # "the row links connecting nodes in the middle two columns of a
        # 16x16 mesh": 16 links, 2 channels each.
        assert bisection_bandwidth(Mesh(16, 2)) == 32

    def test_torus_16(self):
        # The wraparound doubles the cut.
        assert bisection_bandwidth(Torus(16, 2)) == 64

    def test_torus_3d(self):
        # cut crosses k^(n-1) links per cut column, twice for the torus
        assert bisection_bandwidth(Torus(4, 3)) == 2 * 2 * 16

    def test_links_all_in_dim0(self):
        for link in bisection_links(Torus(8, 2)):
            assert link.dim == 0

    def test_faulty_links_reduce_bandwidth(self):
        t = Torus(8, 2)
        links = list(bisection_links(t))
        faulty = frozenset(links[:3])
        assert bisection_bandwidth(t, faulty) == 2 * (len(links) - 3)

    def test_node_fault_on_cut_reduces_bandwidth(self):
        t = Torus(16, 2)
        faults = FaultSet.of(t, nodes=[(7, 3)])  # node adjacent to the cut
        faulty_links = faults.all_faulty_links(t)
        assert bisection_bandwidth(t, faulty_links) == 64 - 2

    def test_odd_radix_supported(self):
        # near-bisection for odd radices keeps the metric defined
        assert bisection_bandwidth(Mesh(5, 2)) == 2 * 5


class TestBisectionMessages:
    def test_sides(self):
        t = Torus(16, 2)
        assert side_of_bisection((0, 5), t) == 0
        assert side_of_bisection((7, 5), t) == 0
        assert side_of_bisection((8, 5), t) == 1
        assert side_of_bisection((15, 5), t) == 1

    def test_crossing_message(self):
        t = Torus(16, 2)
        assert is_bisection_message((0, 0), (8, 0), t)
        assert not is_bisection_message((0, 0), (7, 15), t)

    def test_uniform_traffic_half_crosses(self):
        t = Torus(16, 2)
        nodes = list(t.nodes())
        crossing = sum(
            1 for s in nodes for d in nodes if s != d and is_bisection_message(s, d, t)
        )
        total = len(nodes) * (len(nodes) - 1)
        assert abs(crossing / total - 0.5) < 0.01

"""Tests for the parallel executor (repro.exec.executor): serial/parallel
parity, memoization, failure handling, and the worker-side network cache.

The synthetic task classes live at module level so the worker-pool tests
can pickle them.
"""

import os
import time
from dataclasses import dataclass

import pytest

from repro.exec import (
    ExecPolicy,
    ExecutionError,
    PointTask,
    ResultStore,
    execute,
    resolve_jobs,
    run_configs,
)
from repro.sim import DeadlockError, SimulationConfig, Simulator


def config(**kwargs):
    defaults = dict(
        topology="torus",
        radix=6,
        dims=2,
        rate=0.01,
        warmup_cycles=100,
        measure_cycles=400,
        seed=4,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def sweep_configs(rates=(0.004, 0.008, 0.012, 0.016)):
    from dataclasses import replace

    return [replace(config(), rate=r) for r in rates]


@dataclass(frozen=True)
class _BoomTask:
    """A task that always fails with an ordinary exception."""

    config: SimulationConfig
    cacheable = False

    def execute(self):
        raise ValueError("boom")


@dataclass(frozen=True)
class _DeadlockTask:
    """A task that reports a (synthetic) simulated deadlock."""

    config: SimulationConfig
    cacheable = False

    def execute(self):
        raise DeadlockError(123, "synthetic deadlock at cycle 123")


@dataclass(frozen=True)
class _CrashTask:
    """A task that kills its worker process outright (simulating an OOM
    kill), but survives when re-run in the parent process."""

    config: SimulationConfig
    parent_pid: int
    cacheable = False

    def execute(self):
        if os.getpid() != self.parent_pid:
            os._exit(1)
        return "survived-in-process"


@dataclass(frozen=True)
class _FlakyCrashTask:
    """Crashes its worker exactly once (the first claimant of the marker
    file), then computes the real simulation result — the shape of a
    transient infrastructure fault."""

    config: SimulationConfig
    marker: str
    cacheable = False

    def execute(self):
        try:
            os.rename(self.marker, self.marker + ".claimed")
        except OSError:
            pass  # already claimed: behave
        else:
            os._exit(1)
        return Simulator(self.config).run()


@dataclass(frozen=True)
class _PoisonTask:
    """Crashes its worker on every attempt — a genuine poison task."""

    config: SimulationConfig
    cacheable = False

    def execute(self):
        os._exit(1)


@dataclass(frozen=True)
class _SleepTask:
    """Blocks for longer than any test-policy budget."""

    config: SimulationConfig
    seconds: float
    cacheable = False

    def execute(self):
        time.sleep(self.seconds)
        return "finished-sleeping"


class TestResolveJobs:
    def test_auto(self):
        assert resolve_jobs(None) == resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestParity:
    """The tentpole guarantee: jobs=1, jobs=4 and a cache-warm run all
    produce bit-for-bit identical results, equal to a plain serial loop."""

    def test_serial_parallel_and_cached_identical(self, tmp_path):
        configs = sweep_configs()
        manual = [Simulator(c).run() for c in configs]

        serial, serial_stats = run_configs(configs, jobs=1)
        parallel, parallel_stats = run_configs(configs, jobs=4)
        assert serial == manual
        assert parallel == manual
        assert serial_stats.executed == parallel_stats.executed == len(configs)

        store = ResultStore(tmp_path)
        warmup, warmup_stats = run_configs(configs, jobs=1, store=store)
        cached, cached_stats = run_configs(configs, jobs=4, store=store)
        assert warmup == manual and cached == manual
        assert warmup_stats.cache_hits == 0
        assert cached_stats.cache_hits == len(configs)
        assert cached_stats.executed == 0
        assert cached_stats.hit_ratio == 1.0

    def test_results_keep_task_order(self):
        configs = sweep_configs()
        results, _ = run_configs(configs, jobs=4)
        assert [r.rate for r in results] == [c.rate for c in configs]

    def test_partial_cache(self, tmp_path):
        """Changing one point's config re-simulates only that point."""
        from dataclasses import replace

        store = ResultStore(tmp_path)
        configs = sweep_configs()
        run_configs(configs, store=store)
        configs[1] = replace(configs[1], seed=99)
        results, stats = run_configs(configs, store=store)
        assert stats.cache_hits == len(configs) - 1
        assert stats.executed == 1
        assert results[1] == Simulator(configs[1]).run()


class TestProgress:
    def test_events_cover_all_tasks(self, tmp_path):
        store = ResultStore(tmp_path)
        configs = sweep_configs((0.004, 0.008))
        run_configs(configs, store=store)

        events = []
        run_configs(configs, store=store, progress=events.append)
        assert [e.completed for e in events] == [1, 2]
        assert all(e.cached and e.total == 2 for e in events)
        assert {e.index for e in events} == {0, 1}
        assert all(e.payload.delivered > 0 for e in events)


class TestFailureHandling:
    def test_plain_error_raises_execution_error(self):
        tasks = [PointTask(config()), _BoomTask(config())]
        with pytest.raises(ExecutionError, match="boom"):
            execute(tasks, jobs=1)

    def test_deadlock_reraised_as_deadlock_error(self):
        with pytest.raises(DeadlockError) as excinfo:
            execute([_DeadlockTask(config())], jobs=1)
        assert excinfo.value.cycle == 123

    def test_failures_cross_process_boundary(self):
        with pytest.raises(ExecutionError, match="boom"):
            execute([_BoomTask(config())], jobs=2)
        with pytest.raises(DeadlockError):
            execute([_DeadlockTask(config())], jobs=2)

    def test_allow_failures_collects(self):
        tasks = [_BoomTask(config()), PointTask(config()), _DeadlockTask(config())]
        payloads, stats = execute(tasks, jobs=1, allow_failures=True)
        assert payloads[0] is None and payloads[2] is None
        assert payloads[1].delivered > 0
        assert stats.failed == 2 and stats.executed == 1
        kinds = {f.index: f.kind for f in stats.failures}
        assert kinds == {0: "error", 2: "deadlock"}

    def test_broken_pool_falls_back_in_process(self):
        """A worker dying hard (os._exit) breaks the pool; the executor
        re-runs the unfinished tasks in-process and still returns."""
        tasks = [_CrashTask(config(), parent_pid=os.getpid())]
        with pytest.warns(RuntimeWarning, match="worker pool broke"):
            payloads, stats = execute(tasks, jobs=2)
        assert payloads == ["survived-in-process"]
        assert stats.pool_broken and stats.executed == 1


class TestFaultTolerance:
    """The supervised pool's failure model: transient crashes retry to
    the identical result, overdue/hung workers are killed and accounted,
    and poison tasks are quarantined instead of sinking the sweep."""

    def test_transient_crash_retries_to_identical_result(self, tmp_path):
        marker = tmp_path / "crash-once"
        marker.touch()
        cfg = config()
        policy = ExecPolicy(
            max_attempts=3, backoff_base=0.01, in_process_fallback=False
        )
        payloads, stats = execute(
            [_FlakyCrashTask(cfg, str(marker))], jobs=2, policy=policy
        )
        assert payloads == [Simulator(cfg).run()]  # retry is result-neutral
        assert not marker.exists() and (tmp_path / "crash-once.claimed").exists()
        assert stats.infra_crashes == 1 and stats.infra_retries == 1
        assert stats.failed == 0 and stats.executed == 1
        assert [e.kind for e in stats.infra_events] == ["task_crash", "task_retry"]
        assert all(e.task_index == 0 for e in stats.infra_events)

    def test_timeout_kills_overdue_worker(self):
        policy = ExecPolicy(
            task_timeout=0.5, max_attempts=1, in_process_fallback=False
        )
        payloads, stats = execute(
            [_SleepTask(config(), 30.0)],
            jobs=2,
            policy=policy,
            allow_failures=True,
        )
        assert payloads == [None]
        assert stats.infra_timeouts == 1 and stats.quarantined == 1
        (failure,) = stats.failures
        assert failure.kind == "timeout" and failure.attempts == 1

    def test_hung_worker_detected_by_watchdog(self):
        # heartbeat_interval=0 silences the worker's beats, so the
        # blocked task looks exactly like a process stalled in a syscall
        policy = ExecPolicy(
            heartbeat_interval=0.0,
            heartbeat_grace=0.5,
            max_attempts=1,
            in_process_fallback=False,
        )
        payloads, stats = execute(
            [_SleepTask(config(), 30.0)],
            jobs=2,
            policy=policy,
            allow_failures=True,
        )
        assert payloads == [None]
        assert stats.infra_hung == 1
        (failure,) = stats.failures
        assert failure.kind == "hung"

    def test_poison_task_quarantined_sweep_survives(self):
        cfg = config()
        policy = ExecPolicy(
            max_attempts=2, backoff_base=0.01, in_process_fallback=False
        )
        payloads, stats = execute(
            [_PoisonTask(cfg), PointTask(cfg)],
            jobs=2,
            policy=policy,
            allow_failures=True,
        )
        assert payloads[0] is None
        assert payloads[1] == Simulator(cfg).run()  # the healthy point survived
        assert stats.quarantined == 1
        assert stats.infra_crashes == 2 and stats.infra_retries == 1
        (failure,) = stats.failures
        assert failure.kind == "crash" and failure.index == 0
        assert failure.attempts == 2 and "quarantined" in failure.message
        kinds = [e.kind for e in stats.infra_events]
        assert kinds == ["task_crash", "task_retry", "task_crash", "task_quarantine"]

    def test_backoff_schedule_is_deterministic(self):
        policy = ExecPolicy(backoff_base=0.05, backoff_factor=2.0, backoff_cap=2.0)
        assert [policy.backoff(n) for n in (1, 2, 3)] == [0.05, 0.1, 0.2]
        assert policy.backoff(50) == 2.0  # capped


class TestKillAndResume:
    """The tentpole property on an 8x8 sweep: SIGKILL a worker and the
    whole parent mid-run, resume from the checkpoint, and the surviving
    results are bit-for-bit identical to an uninterrupted jobs=1 run."""

    def test_chaos_kill_and_resume_matches_serial(self, tmp_path):
        from repro.exec.chaos import run_chaos

        report = run_chaos(
            tmp_path / "chaos",
            radix=8,
            jobs=2,
            seed=99,
            worker_kills=1,
            parent_kills=1,
            rates=(0.004, 0.008, 0.012, 0.016, 0.020, 0.024),
            warmup=100,
            measure=300,
        )
        assert report.ok, report.describe()
        assert report.identical
        assert report.parent_kills == 1
        assert report.worker_kills_claimed == 1
        assert report.rounds == 2  # one killed round + one clean resume
        assert report.fsck_report.clean


class TestWorkerNetworkReuse:
    def test_network_cache_shared_by_signature(self):
        from repro.exec.executor import _NETWORK_CACHE, _shared_network

        _NETWORK_CACHE.clear()
        a = _shared_network(config(rate=0.004))
        b = _shared_network(config(rate=0.016, seed=12))  # same network
        c = _shared_network(config(fault_percent=1))  # different network
        assert a is b and a is not c
        assert len(_NETWORK_CACHE) == 2
        _NETWORK_CACHE.clear()

    def test_network_cache_bounded(self):
        from repro.exec.executor import (
            _NETWORK_CACHE,
            _NETWORK_CACHE_MAX,
            _shared_network,
        )

        _NETWORK_CACHE.clear()
        for radix in (4, 5, 6, 7, 8):
            _shared_network(config(radix=radix, warmup_cycles=0, measure_cycles=10))
        assert len(_NETWORK_CACHE) <= _NETWORK_CACHE_MAX
        _NETWORK_CACHE.clear()

    def test_campaign_task_never_cached(self, tmp_path):
        """Campaign results must not be served from the point store."""
        from repro.exec import CampaignTask
        from repro.reliability import FaultCampaign

        store = ResultStore(tmp_path)
        task = CampaignTask(
            config=config(warmup_cycles=0, measure_cycles=10),
            campaign=FaultCampaign([]),
            settle_cycles=100,
        )
        _, first = execute([task], store=store)
        _, second = execute([task], store=store)
        assert first.cache_hits == second.cache_hits == 0
        assert len(store) == 0

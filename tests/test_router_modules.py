"""Unit tests for PDR/crossbar node models and resolution rules."""

import pytest

from repro.core import FaultTolerantRouting
from repro.faults import FaultSet, validate_fault_pattern
from repro.router import ChannelKind, CrossbarNode, PDRNode, sharing_set
from repro.router.messages import Message
from repro.sim import SimulationConfig, SimNetwork
from repro.topology import Direction, Mesh, Torus


class TestInterchipTargets:
    def test_ft_2d(self):
        node = PDRNode((0, 0), Torus(8, 2), 4, fault_tolerant=True)
        assert node.interchip_targets(0) == [1]
        assert node.interchip_targets(1) == [0]

    def test_ft_3d(self):
        node = PDRNode((0, 0, 0), Torus(4, 3), 4, fault_tolerant=True)
        assert node.interchip_targets(0) == [1, 2]
        assert node.interchip_targets(1) == [2, 0]
        assert node.interchip_targets(2) == [0, 1]

    def test_baseline_forward_chain_only(self):
        node = PDRNode((0, 0, 0), Torus(4, 3), 2, fault_tolerant=False)
        assert node.interchip_targets(0) == [1]
        assert node.interchip_targets(1) == [2]
        assert node.interchip_targets(2) == []

    def test_4d_ft_rejected(self):
        with pytest.raises(ValueError):
            PDRNode((0, 0, 0, 0), Torus(4, 4), 4, fault_tolerant=True)

    def test_module_count(self):
        assert len(PDRNode((0, 0), Torus(8, 2), 4).modules) == 2
        assert len(CrossbarNode((0, 0), Torus(8, 2), 4).modules) == 1


class TestSharingSet:
    def test_torus_same_parity_only(self):
        assert sharing_set(0, 4, torus=True) == (0, 2)
        assert sharing_set(1, 4, torus=True) == (1, 3)
        assert sharing_set(2, 4, torus=True) == (2, 0)
        assert sharing_set(3, 4, torus=True) == (3, 1)

    def test_mesh_all_classes(self):
        assert sharing_set(0, 2, torus=False) == (0, 1)
        assert sharing_set(1, 2, torus=False) == (1, 0)

    def test_nominal_always_first(self):
        for nominal in range(4):
            assert sharing_set(nominal, 4, torus=True)[0] == nominal


def build(topology="torus", radix=8, fault_percent=0, **kwargs):
    config = SimulationConfig(
        topology=topology, radix=radix, dims=2, fault_percent=fault_percent, **kwargs
    )
    return SimNetwork(config)


def header_at(net, src, dst):
    """A message plus the module its header notionally sits at (chip 0 of
    the source node)."""
    routing = net.routing
    message = Message(1, src, dst, 20, routing.initial_state(src, dst), 0, False)
    node = net.nodes[src]
    return node, node.injection_module(), message


class TestPDRResolution:
    def test_own_dimension_goes_internode(self):
        net = build()
        node, module, message = header_at(net, (0, 0), (3, 0))
        res = node.resolve(module, message, net.routing, share_idle=False)
        assert res.channel.kind is ChannelKind.INTERNODE
        assert res.channel.dim == 0 and res.channel.direction is Direction.POS
        assert res.commit_decision is not None

    def test_dimension_ascent_pass_through(self):
        net = build()
        node, module, message = header_at(net, (0, 0), (0, 3))
        res = node.resolve(module, message, net.routing, share_idle=False)
        assert res.channel.kind is ChannelKind.INTERCHIP
        assert res.channel.dst_module is node.modules[1]
        # never traveled dim 0: any class of M0's pair
        assert res.classes == (0, 1)
        assert res.commit_decision is None

    def test_consume_chains_to_delivery(self):
        net = build()
        node, module, message = header_at(net, (0, 0), (0, 0) if False else (1, 0))
        dst_node = net.nodes[(1, 0)]
        chip0 = dst_node.modules[0]
        res = dst_node.resolve(chip0, message, net.routing, share_idle=False)
        # message (0,0)->(1,0) arriving at chip0 of (1,0): consume ->
        # pass-through toward the last chip first
        assert res.channel.kind is ChannelKind.INTERCHIP
        res2 = dst_node.resolve(dst_node.modules[1], message, net.routing, share_idle=False)
        assert res2.channel.kind is ChannelKind.CONSUMPTION

    def test_pass_through_keeps_completed_hop_class(self):
        net = build()
        routing = net.routing
        message = Message(1, (6, 0), (1, 1), 20, routing.initial_state((6, 0), (1, 1)), 0, False)
        # walk dim0 hops: 6 -> 7 -> 0 -> 1 (wraps, ends on c1)
        current = (6, 0)
        while True:
            decision = routing.next_hop(message.route, current)
            if decision.dim != 0:
                break
            current = routing.commit_hop(message.route, current, decision)
        assert message.route.last_vc_class == 1
        node = net.nodes[current]
        res = node.resolve(node.modules[0], message, routing, share_idle=False)
        assert res.channel.kind is ChannelKind.INTERCHIP
        assert res.classes == (1,)

    def test_misroute_entry_uses_exact_class(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(4, 4)])
        config = SimulationConfig(topology="torus", radix=8, dims=2, faults=fs)
        net = SimNetwork(config)
        routing = net.routing
        message = Message(1, (3, 4), (6, 4), 20, routing.initial_state((3, 4), (6, 4)), 0, False)
        node = net.nodes[(3, 4)]
        res = node.resolve(node.modules[0], message, routing, share_idle=True)
        # blocked in dim0 -> interchip to chip1, exactly the designated class
        assert res.channel.kind is ChannelKind.INTERCHIP
        assert res.classes == (0,)

    def test_share_idle_widens_internode_classes(self):
        net = build()
        node, module, message = header_at(net, (0, 0), (3, 0))
        res = node.resolve(module, message, net.routing, share_idle=True)
        assert res.classes == (0, 2)

    def test_ring_channel_not_widened(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(4, 4)])
        config = SimulationConfig(topology="torus", radix=8, dims=2, faults=fs)
        net = SimNetwork(config)
        # (3,3) -> (3,5): dim1 hops along the ring's left column
        routing = net.routing
        message = Message(1, (3, 3), (3, 5), 20, routing.initial_state((3, 3), (3, 5)), 0, False)
        node = net.nodes[(3, 3)]
        res = node.resolve(node.modules[1], message, routing, share_idle=True)
        assert res.channel.kind is ChannelKind.INTERNODE
        assert res.channel.on_ring
        assert len(res.classes) == 1


class TestRoundRobinBounds:
    """Arbitration counters must not grow without bound over a run.

    The channel counter is reduced modulo the busy count on every
    advance.  The module counter is advanced to ``start + offset + 1``
    with ``start < count`` and ``offset < count``, so it stays below
    ``2 * count`` — it cannot be reduced modulo ``count`` instead,
    because the next arbitration reduces by the *future* waiting length
    and the stored residue would change which header is served.
    """

    def run_sim(self, **kwargs):
        from repro.sim import Simulator

        defaults = dict(
            topology="torus", radix=8, dims=2, rate=0.03,
            warmup_cycles=200, measure_cycles=800, seed=3, fault_percent=1,
        )
        defaults.update(kwargs)
        sim = Simulator(SimulationConfig(**defaults))
        sim.run()
        return sim

    def test_module_rr_bounded_by_twice_fanin(self):
        sim = self.run_sim()
        # a module arbitrates over at most its input VCs; the waiting
        # list can never exceed the VCs of the channels feeding it
        for module in sim.net.modules:
            fan_in = sum(
                len(ch.vcs) for ch in sim.net.channels if ch.dst_module is module
            )
            assert 0 <= module.rr <= 2 * max(fan_in, 1)

    def test_channel_rr_stays_within_vc_count(self):
        sim = self.run_sim()
        served = 0
        for channel in sim.net.channels:
            if channel.transfers:
                served += 1
            assert 0 <= channel.rr < max(len(channel.vcs), 1)
        assert served > 0

    def test_bounds_hold_under_saturation(self):
        sim = self.run_sim(rate=0.08, measure_cycles=600, fault_percent=0)
        for module in sim.net.modules:
            fan_in = sum(
                len(ch.vcs) for ch in sim.net.channels if ch.dst_module is module
            )
            assert 0 <= module.rr <= 2 * max(fan_in, 1)
        for channel in sim.net.channels:
            assert 0 <= channel.rr < max(len(channel.vcs), 1)


class TestCrossbarResolution:
    def test_no_interchip_channels(self):
        net = build(router_model="crossbar")
        assert all(
            ch.kind is not ChannelKind.INTERCHIP for ch in net.channels
        )

    def test_direct_delivery(self):
        net = build(router_model="crossbar")
        node, module, message = header_at(net, (1, 0), (1, 0) if False else (2, 0))
        dst_node = net.nodes[(2, 0)]
        res = dst_node.resolve(dst_node.modules[0], message, net.routing, share_idle=False)
        assert res.channel.kind is ChannelKind.CONSUMPTION

    def test_dimension_change_is_internal(self):
        net = build(router_model="crossbar")
        node, module, message = header_at(net, (0, 0), (0, 3))
        res = node.resolve(module, message, net.routing, share_idle=False)
        assert res.channel.kind is ChannelKind.INTERNODE
        assert res.channel.dim == 1

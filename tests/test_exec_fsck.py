"""Tests for store integrity checking (repro.exec.fsck): every issue
kind is detected, quarantine preserves the evidence, dry-run touches
nothing, and the CLI exit codes reflect what was found.
"""

import json
import shutil

import pytest

from repro.exec.fsck import FsckIssue, fsck, main as fsck_main
from repro.exec.store import QUARANTINE_DIR, ResultStore
from repro.sim import SimulationConfig, Simulator


def config(**kwargs):
    defaults = dict(
        topology="torus",
        radix=6,
        dims=2,
        rate=0.01,
        warmup_cycles=100,
        measure_cycles=400,
        seed=9,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


@pytest.fixture(scope="module")
def result():
    return Simulator(config()).run()


@pytest.fixture()
def store(tmp_path, result):
    store = ResultStore(tmp_path / "results")
    store.store(config(), result)
    store.store(config(rate=0.02), result)
    return store


def entry_path(store, cfg=None):
    return store.path_for(cfg if cfg is not None else config())


def rewrite(path, mutate):
    entry = json.loads(path.read_text(encoding="utf-8"))
    mutate(entry)
    path.write_text(json.dumps(entry), encoding="utf-8")


class TestCleanStore:
    def test_clean_report(self, store):
        report = fsck(store)
        assert report.clean
        assert report.scanned == 2 and report.ok == 2
        assert report.issues == [] and report.temps_removed == 0
        assert report.describe().endswith("store is clean")

    def test_accepts_a_bare_path(self, store):
        assert fsck(store.root).clean

    def test_empty_store(self, tmp_path):
        report = fsck(tmp_path / "nothing-here")
        assert report.clean and report.scanned == 0


class TestIssueKinds:
    def test_torn_entry(self, store):
        entry_path(store).write_text("{ torn json", encoding="utf-8")
        report = fsck(store)
        (issue,) = report.issues
        assert issue.kind == "torn-entry"
        assert not report.clean

    def test_missing_fields_is_torn(self, store):
        entry_path(store).write_text('{"key": "only"}', encoding="utf-8")
        (issue,) = fsck(store).issues
        assert issue.kind == "torn-entry" and "missing" in issue.detail

    def test_renamed_entry_is_key_mismatch(self, store):
        path = entry_path(store)
        imposter = path.with_name("0" * 63 + "f.json")
        path.rename(imposter)
        kinds = {issue.kind for issue in fsck(store).issues}
        assert kinds == {"key-mismatch"}

    def test_wrong_shard_is_misplaced(self, store):
        path = entry_path(store)
        wrong = store.root / ("zz" if path.parent.name != "zz" else "yy")
        wrong.mkdir()
        path.rename(wrong / path.name)
        (issue,) = fsck(store).issues
        assert issue.kind == "misplaced"

    def test_unrebuildable_result(self, store):
        rewrite(entry_path(store), lambda e: e.update(result=[]))
        (issue,) = fsck(store).issues
        assert issue.kind == "bad-result"

    def test_unrebuildable_config(self, store):
        rewrite(entry_path(store), lambda e: e.update(config={"bogus": True}))
        (issue,) = fsck(store).issues
        assert issue.kind == "bad-config"

    def test_edited_config_breaks_the_hash(self, store):
        """A rebuildable config that no longer hashes to the filename
        must not be served for the wrong configuration."""

        def bump_rate(entry):
            entry["config"]["rate"] = 0.999

        rewrite(entry_path(store), bump_rate)
        (issue,) = fsck(store).issues
        assert issue.kind == "key-mismatch" and "content hash" in issue.detail


class TestRepair:
    def test_quarantine_preserves_evidence(self, store):
        path = entry_path(store)
        original = "{ torn json"
        path.write_text(original, encoding="utf-8")
        report = fsck(store)
        (issue,) = report.issues
        assert not path.exists()  # removed from the serving tree ...
        moved = store.root / QUARANTINE_DIR / path.name
        assert str(moved) == issue.quarantined_to
        assert moved.read_text(encoding="utf-8") == original  # ... not deleted
        assert store.load(config()) is None  # reads as a miss now
        assert fsck(store).clean  # second pass: nothing left to fix

    def test_quarantine_never_overwrites(self, store, result):
        path = entry_path(store)
        qdir = store.root / QUARANTINE_DIR
        qdir.mkdir()
        shutil.copy(path, qdir / path.name)  # name already taken
        path.write_text("{ torn", encoding="utf-8")
        (issue,) = fsck(store).issues
        assert issue.quarantined_to.endswith(".1")

    def test_temp_files_collected(self, store):
        tmp = next(iter(store._shards())) / "leftover.tmp"
        tmp.write_text("half a result", encoding="utf-8")
        report = fsck(store)
        assert report.temps_removed == 1 and not tmp.exists()
        assert not report.clean  # a removed temp is evidence of a crash

    def test_dry_run_changes_nothing(self, store):
        path = entry_path(store)
        path.write_text("{ torn", encoding="utf-8")
        tmp = next(iter(store._shards())) / "leftover.tmp"
        tmp.write_text("x", encoding="utf-8")
        report = fsck(store, repair=False)
        assert not report.repaired
        (issue,) = report.issues
        assert issue.quarantined_to == ""
        assert report.temps_removed == 1  # counted, and ...
        assert path.exists() and tmp.exists()  # ... nothing moved

    def test_quarantine_dir_not_scanned_as_entries(self, store):
        """Quarantined files must not be re-reported forever."""
        entry_path(store).write_text("{ torn", encoding="utf-8")
        fsck(store)
        report = fsck(store)
        assert report.clean and report.scanned == 1


class TestMain:
    def test_exit_zero_when_clean(self, store, capsys):
        assert fsck_main([str(store.root)]) == 0
        assert "store is clean" in capsys.readouterr().out

    def test_exit_one_on_issues(self, store, capsys):
        entry_path(store).write_text("{ torn", encoding="utf-8")
        assert fsck_main([str(store.root)]) == 1
        out = capsys.readouterr().out
        assert "torn-entry" in out and "store needed repair" in out

    def test_dry_run_flag(self, store):
        path = entry_path(store)
        path.write_text("{ torn", encoding="utf-8")
        assert fsck_main([str(store.root), "--dry-run"]) == 1
        assert path.exists()

    def test_issue_describe_includes_destination(self):
        issue = FsckIssue(
            kind="torn-entry", path="a/b.json", detail="bad", quarantined_to="q/b.json"
        )
        assert "-> q/b.json" in issue.describe()

"""Acceptance test: exactly-once delivery through a mid-run fault
campaign on a 16x16 torus.

The scripted campaign shears four loaded links at cycle 400 and four
more at cycle 800 (link-only, so no flow loses an endpoint and recovery
is always possible).  With the reliability layer attached every
generated message must be delivered exactly once — the nonzero
retransmission counters prove recovery actually happened, they did not
just get lucky.  The same campaign without the layer permanently loses
the truncated worms.
"""

import pytest

from repro.reliability import (
    FaultCampaign,
    FaultEvent,
    ReliabilityConfig,
    ReliableTransport,
    replay_campaign,
)
from repro.sim import SimulationConfig, Simulator

# 16x16 acceptance runs take minutes; the slow CI job runs them
pytestmark = pytest.mark.slow

CAMPAIGN = FaultCampaign(
    [
        FaultEvent(
            400,
            links=(((0, 0), 1, -1), ((0, 4), 0, 1), ((0, 6), 0, -1), ((0, 8), 1, 1)),
            label="four loaded links shear",
        ),
        FaultEvent(
            800,
            links=(((0, 10), 1, 1), ((0, 12), 1, 1), ((1, 1), 1, 1), ((1, 14), 0, 1)),
            label="four more links shear",
        ),
    ]
)


def build_sim():
    config = SimulationConfig(
        topology="torus", radix=16, dims=2, rate=0.006,
        warmup_cycles=0, measure_cycles=10, seed=7,
        strict_invariants=True,
    )
    return Simulator(config)


def test_reliable_campaign_delivers_exactly_once():
    sim = build_sim()
    transport = ReliableTransport(sim, ReliabilityConfig(timeout=500))
    outcome = replay_campaign(sim, CAMPAIGN, settle_cycles=400)

    # both injections landed and truncated live worms
    assert [r.applied for r in outcome.records] == [True, True]
    assert all(r.report.dropped_in_flight > 0 for r in outcome.records)

    stats = transport.stats
    assert stats.tracked_generated > 500
    # every generated message was delivered exactly once ...
    assert stats.exactly_once
    assert stats.unique_delivered == stats.tracked_generated
    assert stats.lost == 0
    # ... and it took real recoveries to get there
    assert stats.retransmissions > 0
    assert stats.fault_retransmissions > 0
    assert stats.killed_in_flight > 0
    assert stats.aborted == 0 and stats.gave_up == 0

    # every fault event's recovery completed and was timed
    for record in outcome.records:
        assert record.time_to_recover is not None
        assert record.time_to_recover > 0

    result = sim._result()
    assert result.reliability_enabled
    assert result.delivery_ratio == 1.0
    assert result.retransmitted_messages == stats.retransmissions
    assert len(result.recovery_cycles) == len(outcome.records)
    assert transport.quiescent and sim.in_flight == 0


def test_bare_campaign_loses_messages():
    sim = build_sim()
    outcome = replay_campaign(sim, CAMPAIGN, settle_cycles=400)

    assert [r.applied for r in outcome.records] == [True, True]
    assert outcome.stats is None

    result = sim._result()
    assert not result.reliability_enabled
    # the truncated worms are permanently lost without the transport
    assert result.killed_in_flight > 0
    assert result.lost_messages == result.killed_in_flight + result.killed_queued
    assert result.lost_messages > 0
    assert result.delivery_ratio < 1.0

"""Tests for the campaign service (repro.service): spec validation and
identity, journal recovery, admission control, drain semantics, and the
HTTP surface end to end.  The crash/kill properties live in
tests/test_service_chaos.py.
"""

import json
import threading
import time

import pytest

from repro.service import (
    CampaignService,
    Draining,
    JobSpec,
    JobStore,
    QueueFull,
    ServiceClient,
    SpecError,
    serve,
)
from repro.service.jobs import _append_jsonl
from repro.sim import SimulationConfig


def tiny_config(**overrides):
    base = dict(
        topology="torus",
        radix=6,
        dims=2,
        rate=0.004,
        warmup_cycles=100,
        measure_cycles=200,
        fault_percent=1,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def sweep_payload(rates=(0.004, 0.008), label="t", **overrides):
    return {
        "kind": "sweep",
        "config": tiny_config(**overrides).to_canonical(),
        "rates": list(rates),
        "label": label,
    }


class TestJobSpec:
    def test_round_trip_and_stable_id(self):
        spec = JobSpec.from_payload(sweep_payload())
        again = JobSpec.from_canonical(spec.to_canonical())
        assert again == spec
        assert again.job_id() == spec.job_id()

    def test_label_is_cosmetic(self):
        a = JobSpec.from_payload(sweep_payload(label="one"))
        b = JobSpec.from_payload(sweep_payload(label="two"))
        assert a.job_id() == b.job_id()

    def test_identity_covers_execution_inputs(self):
        base = JobSpec.from_payload(sweep_payload())
        assert base.job_id() != JobSpec.from_payload(sweep_payload(rates=(0.004,))).job_id()
        assert base.job_id() != JobSpec.from_payload(sweep_payload(seed=9)).job_id()
        traced = dict(sweep_payload())
        traced["trace"] = True
        assert base.job_id() != JobSpec.from_payload(traced).job_id()
        # ... and the code-version tag
        assert base.job_id("other-version") != base.job_id()

    def test_sweep_expands_rate_major(self):
        payload = sweep_payload(rates=(0.004, 0.008))
        payload["seeds"] = [1, 2]
        spec = JobSpec.from_payload(payload)
        configs = spec.configs()
        assert [(c.rate, c.seed) for c in configs] == [
            (0.004, 1), (0.004, 2), (0.008, 1), (0.008, 2)
        ]
        assert len(spec.build_tasks()) == 4

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda p: p.pop("kind"), "kind"),
            (lambda p: p.update(kind="banana"), "kind"),
            (lambda p: p.update(config="not-a-dict"), "config"),
            (lambda p: p.update(bogus=1), "unknown spec field"),
            (lambda p: p.update(rates=[9.0]), "rate"),
            (lambda p: p.update(settle_cycles=-1), "settle_cycles"),
            (lambda p: p.update(task_timeout=0), "task_timeout"),
            (lambda p: p.update(retries=0), "retries"),
            (lambda p: p.update(campaign={"events": []}), "campaign"),
        ],
    )
    def test_bad_payloads_raise_spec_error(self, mutate, message):
        payload = sweep_payload()
        mutate(payload)
        with pytest.raises(SpecError, match=message):
            JobSpec.from_payload(payload)

    def test_campaign_spec_needs_timeline(self):
        payload = {"kind": "campaign", "config": tiny_config().to_canonical()}
        with pytest.raises(SpecError, match="timeline"):
            JobSpec.from_payload(payload)

    def test_not_an_object(self):
        with pytest.raises(SpecError, match="JSON object"):
            JobSpec.from_payload([1, 2, 3])


class TestJobStoreRecovery:
    def test_journaled_submit_recovers_as_pending(self, tmp_path):
        store = JobStore(tmp_path)
        spec = JobSpec.from_payload(sweep_payload())
        job_id = spec.job_id()
        store.write_spec(job_id, spec)
        store.journal("submit", job_id)
        records, pending = store.recover()
        assert pending == [job_id]
        assert records[job_id].state == "queued"
        assert records[job_id].recovered is True
        assert records[job_id].spec == spec

    def test_started_but_unfinished_requeues(self, tmp_path):
        store = JobStore(tmp_path)
        spec = JobSpec.from_payload(sweep_payload())
        job_id = spec.job_id()
        store.write_spec(job_id, spec)
        store.journal("submit", job_id)
        store.journal("start", job_id)
        _, pending = store.recover()
        assert pending == [job_id]

    def test_done_with_result_stays_done(self, tmp_path):
        store = JobStore(tmp_path)
        spec = JobSpec.from_payload(sweep_payload())
        job_id = spec.job_id()
        store.write_spec(job_id, spec)
        store.journal("submit", job_id)
        store.write_result(job_id, {"results": [], "failures": [], "stats": {"x": 1}})
        store.journal("done", job_id)
        records, pending = store.recover()
        assert pending == []
        assert records[job_id].state == "done"
        assert records[job_id].stats == {"x": 1}

    def test_done_without_readable_result_requeues(self, tmp_path):
        """The payload write precedes the journal record, so this only
        happens under external damage — and the safe answer is re-run."""
        store = JobStore(tmp_path)
        spec = JobSpec.from_payload(sweep_payload())
        job_id = spec.job_id()
        store.write_spec(job_id, spec)
        store.journal("submit", job_id)
        store.journal("done", job_id)  # no result.json on disk
        _, pending = store.recover()
        assert pending == [job_id]

    def test_orphan_spec_dir_is_adopted(self, tmp_path):
        """Crash between spec write and journal append: the spec exists,
        the journal never heard of it.  Recovery adopts it."""
        store = JobStore(tmp_path)
        spec = JobSpec.from_payload(sweep_payload())
        job_id = spec.job_id()
        store.write_spec(job_id, spec)  # never journaled
        records, pending = store.recover()
        assert pending == [job_id]
        assert records[job_id].state == "queued"

    def test_submission_order_is_preserved(self, tmp_path):
        store = JobStore(tmp_path)
        ids = []
        for rate in (0.004, 0.006, 0.008):
            spec = JobSpec.from_payload(sweep_payload(rates=(rate,)))
            ids.append(spec.job_id())
            store.write_spec(ids[-1], spec)
            store.journal("submit", ids[-1])
        _, pending = store.recover()
        assert pending == ids

    def test_torn_journal_tail_is_skipped(self, tmp_path):
        store = JobStore(tmp_path)
        spec = JobSpec.from_payload(sweep_payload())
        job_id = spec.job_id()
        store.write_spec(job_id, spec)
        store.journal("submit", job_id)
        with open(store.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "done", "job"')  # torn mid-write
        _, pending = store.recover()
        assert pending == [job_id]
        # the next append heals the tail instead of corrupting the line
        store.journal("start", job_id)
        entries = store.journal_entries()
        assert [e["op"] for e in entries] == ["submit", "start"]

    def test_append_helper_fsyncs_one_record_per_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _append_jsonl(path, {"a": 1})
        _append_jsonl(path, {"b": 2})
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [{"a": 1}, {"b": 2}]


class TestAdmission:
    def test_submit_runs_and_dedupes(self, tmp_path):
        service = CampaignService(tmp_path, jobs=1)
        try:
            record, created = service.submit(sweep_payload())
            assert created is True
            again, created_again = service.submit(sweep_payload(label="other"))
            assert created_again is False
            assert again is record
            deadline = time.monotonic() + 60
            while not record.terminal and time.monotonic() < deadline:
                time.sleep(0.02)
            assert record.state == "done"
            result = service.job_store.load_result(record.job_id)
            assert len(result["results"]) == 2
            assert result["failures"] == []
            # exec events are always exported, even when empty
            assert service.job_store.exec_events_path(record.job_id).is_file()
        finally:
            service.stop()
            service.wait_drained(timeout=60)

    def test_bounded_queue_sheds_load(self, tmp_path):
        service = CampaignService(tmp_path, jobs=1, max_queue=0)
        try:
            with pytest.raises(QueueFull) as excinfo:
                service.submit(sweep_payload())
            assert excinfo.value.retry_after >= 1
        finally:
            service.stop()
            service.wait_drained(timeout=60)

    def test_draining_refuses_new_work(self, tmp_path):
        service = CampaignService(tmp_path, jobs=1)
        service.drain()
        assert service.wait_drained(timeout=60)
        with pytest.raises(Draining):
            service.submit(sweep_payload())

    def test_recovered_pending_job_runs_on_next_start(self, tmp_path):
        """Drain semantics: a job still queued when the server stops is
        journaled, and the next server run picks it up and finishes it."""
        store = JobStore(tmp_path)
        spec = JobSpec.from_payload(sweep_payload(rates=(0.004,)))
        job_id = spec.job_id()
        store.write_spec(job_id, spec)
        store.journal("submit", job_id)

        service = CampaignService(tmp_path, jobs=1)
        try:
            record = service.get(job_id)
            assert record is not None and record.recovered
            deadline = time.monotonic() + 60
            while not record.terminal and time.monotonic() < deadline:
                time.sleep(0.02)
            assert record.state == "done"
        finally:
            service.stop()
            service.wait_drained(timeout=60)

    def test_status_reuses_execution_stats_schema(self, tmp_path):
        service = CampaignService(tmp_path, jobs=1)
        try:
            status = service.status()
            assert status["stats"] == service.totals.to_dict()
            for key in ("infra_retries", "infra_crashes", "hit_ratio", "quarantined"):
                assert key in status["stats"]
        finally:
            service.stop()
            service.wait_drained(timeout=60)


@pytest.fixture
def live_server(tmp_path):
    """A real HTTP server on an ephemeral port, drained at teardown."""
    root = tmp_path / "svc"
    thread = threading.Thread(
        target=serve,
        args=(root,),
        kwargs=dict(port=0, jobs=1, max_queue=4, install_signals=False),
        daemon=True,
    )
    thread.start()
    client = ServiceClient(root, attempts=20)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if (root / "server.json").is_file():
            break
        time.sleep(0.01)
    yield client
    client.drain()
    thread.join(timeout=60)


class TestHTTP:
    def test_submit_wait_result_and_idempotency(self, live_server):
        client = live_server
        summary = client.submit(sweep_payload())
        assert summary["state"] in ("queued", "running", "done")
        result = client.wait(summary["job"], timeout=120)
        assert len(result["results"]) == 2
        assert result["failures"] == []
        assert result["stats"]["total"] == 2
        again = client.submit(sweep_payload())
        assert again["job"] == summary["job"]
        assert again["state"] == "done"

    def test_events_stream_progress(self, live_server):
        client = live_server
        summary = client.submit(sweep_payload(rates=(0.004, 0.006, 0.008)))
        client.wait(summary["job"], timeout=120)
        events = list(client.events(summary["job"]))
        # one line per completed point, then the terminal summary line
        progress = [e for e in events if "completed" in e and "state" not in e]
        assert [e["completed"] for e in progress] == [1, 2, 3]
        assert events[-1]["state"] == "done"

    def test_bad_spec_is_rejected_with_400(self, live_server):
        from repro.service import ClientError

        with pytest.raises(ClientError) as excinfo:
            live_server.submit({"kind": "nope"})
        assert excinfo.value.status == 400

    def test_unknown_job_404s(self, live_server):
        from repro.service import ClientError

        with pytest.raises(ClientError) as excinfo:
            live_server.job("f" * 64)
        assert excinfo.value.status == 404

    def test_status_endpoint(self, live_server):
        status = live_server.status()
        assert status["max_queue"] == 4
        assert "stats" in status and "infra_retries" in status["stats"]

"""Unit tests for traffic patterns."""

import random

import pytest

from repro.sim.traffic import (
    BitReversalTraffic,
    HotspotTraffic,
    TransposeTraffic,
    UniformTraffic,
    make_traffic,
)
from repro.topology import Torus


@pytest.fixture()
def net():
    t = Torus(8, 2)
    return t, list(t.nodes())


class TestUniform:
    def test_never_self(self, net):
        t, healthy = net
        traffic = UniformTraffic(t, healthy, random.Random(0))
        for _ in range(500):
            src = (3, 3)
            assert traffic.destination(src) != src

    def test_covers_many_destinations(self, net):
        t, healthy = net
        traffic = UniformTraffic(t, healthy, random.Random(0))
        seen = {traffic.destination((0, 0)) for _ in range(2000)}
        assert len(seen) > 50

    def test_respects_healthy_subset(self, net):
        t, healthy = net
        subset = healthy[:10]
        traffic = UniformTraffic(t, subset, random.Random(0))
        for _ in range(100):
            assert traffic.destination((0, 0)) in subset


class TestTranspose:
    def test_swaps_first_two_dims(self, net):
        t, healthy = net
        traffic = TransposeTraffic(t, healthy, random.Random(0))
        assert traffic.destination((2, 5)) == (5, 2)

    def test_diagonal_nodes_silent(self, net):
        t, healthy = net
        traffic = TransposeTraffic(t, healthy, random.Random(0))
        assert traffic.destination((3, 3)) is None

    def test_faulty_destination_silent(self, net):
        t, healthy = net
        traffic = TransposeTraffic(t, [c for c in healthy if c != (5, 2)], random.Random(0))
        assert traffic.destination((2, 5)) is None


class TestBitReversal:
    def test_permutation(self, net):
        t, healthy = net
        traffic = BitReversalTraffic(t, healthy, random.Random(0))
        # node id 1 = 000001 -> reversed 100000 = 32
        assert traffic.destination(t.coord(1)) == t.coord(32)

    def test_non_power_of_two_rejected(self):
        t = Torus(6, 2)
        with pytest.raises(ValueError):
            BitReversalTraffic(t, list(t.nodes()), random.Random(0))


class TestHotspot:
    def test_fraction_hits_hotspot(self, net):
        t, healthy = net
        traffic = HotspotTraffic(t, healthy, random.Random(0), fraction=0.5)
        hits = sum(1 for _ in range(2000) if traffic.destination((0, 0)) == traffic.hotspot)
        assert 800 < hits < 1300

    def test_default_hotspot_is_center(self, net):
        t, healthy = net
        traffic = HotspotTraffic(t, healthy, random.Random(0))
        assert traffic.hotspot == (4, 4)


class TestFactory:
    def test_known_names(self, net):
        t, healthy = net
        for name in ("uniform", "transpose", "bit-reversal", "hotspot"):
            assert make_traffic(name, t, healthy, random.Random(0)).name == name

    def test_unknown_name(self, net):
        t, healthy = net
        with pytest.raises(ValueError):
            make_traffic("tornado", t, healthy, random.Random(0))

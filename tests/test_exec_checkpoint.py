"""Tests for sweep checkpoints (repro.exec.checkpoint): manifest
identity, the append-only completion log, and checkpointed execution —
resume serves completed work and replays recorded failures.
"""

from dataclasses import dataclass, replace

import pytest

from repro.exec import (
    CheckpointMismatch,
    PointTask,
    ResultStore,
    SweepCheckpoint,
    execute,
    task_key,
)
from repro.exec.store import CODE_VERSION
from repro.sim import SimulationConfig


def config(**kwargs):
    defaults = dict(
        topology="torus",
        radix=6,
        dims=2,
        rate=0.01,
        warmup_cycles=100,
        measure_cycles=400,
        seed=4,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def sweep_tasks(rates=(0.004, 0.008, 0.012)):
    return [PointTask(replace(config(), rate=r)) for r in rates]


@dataclass(frozen=True)
class _BoomTask:
    """Deterministically fails, and counts its executions in a file so a
    test can prove a replayed failure never re-ran the task."""

    config: SimulationConfig
    tally: str
    cacheable = False

    def execute(self):
        with open(self.tally, "a") as handle:
            handle.write("x\n")
        raise ValueError("boom")


class TestTaskKey:
    def test_point_task_key_is_store_key(self):
        """checkpoint key == store key, so an 'ok' mark is servable."""
        task = PointTask(config())
        assert task_key(task) == config().content_hash(CODE_VERSION)
        assert task_key(task, "other") == config().content_hash("other")

    def test_plain_object_falls_back_to_config_hash(self):
        @dataclass(frozen=True)
        class Bare:
            config: SimulationConfig

        assert task_key(Bare(config()), "v") == config().content_hash("v")


class TestManifest:
    def test_create_and_reopen(self, tmp_path):
        keys = ["k1", "k2", "k3"]
        created = SweepCheckpoint.create(tmp_path / "ckpt", keys, label="sweep A")
        assert created.exists
        reopened = SweepCheckpoint.open_or_create(tmp_path / "ckpt", keys)
        assert reopened.keys() == keys
        assert reopened.manifest()["label"] == "sweep A"
        assert reopened.progress() == (0, 3)

    def test_different_keys_rejected(self, tmp_path):
        SweepCheckpoint.create(tmp_path / "ckpt", ["k1", "k2"])
        with pytest.raises(CheckpointMismatch, match="different"):
            SweepCheckpoint.open_or_create(tmp_path / "ckpt", ["k1", "k9"])

    def test_different_version_rejected(self, tmp_path):
        SweepCheckpoint.create(tmp_path / "ckpt", ["k1"], version="v1")
        with pytest.raises(CheckpointMismatch):
            SweepCheckpoint.open_or_create(tmp_path / "ckpt", ["k1"], version="v2")

    def test_unreadable_manifest_rejected(self, tmp_path):
        checkpoint = SweepCheckpoint.create(tmp_path / "ckpt", ["k1"])
        checkpoint.manifest_path.write_text("{ torn", encoding="utf-8")
        with pytest.raises(CheckpointMismatch, match="unreadable"):
            SweepCheckpoint(tmp_path / "ckpt").manifest()

    def test_for_tasks_is_stable_per_sweep(self, tmp_path):
        tasks = sweep_tasks()
        first = SweepCheckpoint.for_tasks(tmp_path, tasks, label="fig")
        again = SweepCheckpoint.for_tasks(tmp_path, tasks, label="fig")
        other = SweepCheckpoint.for_tasks(tmp_path, sweep_tasks((0.02, 0.04)))
        assert first.directory == again.directory  # same sweep, same manifest
        assert first.directory != other.directory  # one root serves many sweeps
        assert first.directory.parent == tmp_path

    def test_discard(self, tmp_path):
        checkpoint = SweepCheckpoint.create(tmp_path / "ckpt", ["k1"])
        checkpoint.mark_ok("k1")
        checkpoint.discard()
        assert not checkpoint.exists and not checkpoint.done_path.exists()


class TestCompletionLog:
    def test_marks_round_trip(self, tmp_path):
        checkpoint = SweepCheckpoint.create(tmp_path / "ckpt", ["k1", "k2"])
        checkpoint.mark_ok("k1")
        checkpoint.mark_failed("k2", kind="deadlock", message="stuck", cycle=7)
        records = checkpoint.completed()
        assert records["k1"]["status"] == "ok"
        assert records["k2"] == {
            "key": "k2",
            "status": "failed",
            "kind": "deadlock",
            "message": "stuck",
            "cycle": 7,
            "attempts": 1,
        }
        assert checkpoint.progress() == (2, 2)
        assert "2/2 done" in checkpoint.describe()

    def test_torn_tail_is_skipped(self, tmp_path):
        """A parent killed mid-append leaves a torn last line; reading
        tolerates it and only that record is lost."""
        checkpoint = SweepCheckpoint.create(tmp_path / "ckpt", ["k1", "k2"])
        checkpoint.mark_ok("k1")
        with open(checkpoint.done_path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "sta')
        assert set(checkpoint.completed()) == {"k1"}
        # the next append heals the torn tail: the new record lands on
        # its own line instead of fusing with the fragment
        checkpoint.mark_ok("k2")
        assert set(checkpoint.completed()) == {"k1", "k2"}

    def test_last_record_wins(self, tmp_path):
        checkpoint = SweepCheckpoint.create(tmp_path / "ckpt", ["k1"])
        checkpoint.mark_failed("k1", kind="crash", message="worker died")
        checkpoint.mark_ok("k1")
        assert checkpoint.completed()["k1"]["status"] == "ok"


class TestCheckpointedExecution:
    def test_resume_serves_from_store(self, tmp_path):
        tasks = sweep_tasks()
        store = ResultStore(tmp_path / "store")
        checkpoint = SweepCheckpoint.for_tasks(
            tmp_path / "ckpt", tasks, version=store.version
        )
        first, first_stats = execute(tasks, store=store, checkpoint=checkpoint)
        assert first_stats.executed == len(tasks)
        assert checkpoint.progress() == (len(tasks), len(tasks))

        resumed = SweepCheckpoint.for_tasks(
            tmp_path / "ckpt", tasks, version=store.version
        )
        second, second_stats = execute(tasks, store=store, checkpoint=resumed)
        assert second == first  # bit-for-bit: same payload objects rebuild
        assert second_stats.executed == 0
        assert second_stats.cache_hits == len(tasks)

    def test_partial_checkpoint_runs_only_the_rest(self, tmp_path):
        """Simulate an interruption: mark the first task done by hand,
        then run — only the unfinished tasks execute."""
        tasks = sweep_tasks()
        store = ResultStore(tmp_path / "store")
        from repro.sim import Simulator

        store.store(tasks[0].config, Simulator(tasks[0].config).run())
        keys = [task_key(t, store.version) for t in tasks]
        checkpoint = SweepCheckpoint.create(tmp_path / "ckpt", keys)
        checkpoint.mark_ok(keys[0])

        payloads, stats = execute(tasks, store=store, checkpoint=checkpoint)
        assert stats.cache_hits == 1 and stats.executed == len(tasks) - 1
        assert all(p is not None for p in payloads)

    def test_recorded_failure_replays_without_rerunning(self, tmp_path):
        tally = tmp_path / "tally"
        tasks = [PointTask(config()), _BoomTask(config(rate=0.02), str(tally))]
        store = ResultStore(tmp_path / "store")
        checkpoint = SweepCheckpoint.for_tasks(
            tmp_path / "ckpt", tasks, version=store.version
        )
        _, first = execute(
            tasks, store=store, checkpoint=checkpoint, allow_failures=True
        )
        assert first.failed == 1 and tally.read_text().count("x") == 1

        resumed = SweepCheckpoint.for_tasks(
            tmp_path / "ckpt", tasks, version=store.version
        )
        payloads, second = execute(
            tasks, store=store, checkpoint=resumed, allow_failures=True
        )
        assert tally.read_text().count("x") == 1  # the poison never re-ran
        assert second.replayed_failures == 1 and second.executed == 0
        (failure,) = second.failures
        assert failure.kind == "error" and "boom" in failure.message
        assert payloads[0] is not None and payloads[1] is None

    def test_replayed_failure_still_raises_without_allow(self, tmp_path):
        from repro.exec import ExecutionError

        tally = tmp_path / "tally"
        tasks = [_BoomTask(config(), str(tally))]
        store = ResultStore(tmp_path / "store")
        checkpoint = SweepCheckpoint.for_tasks(
            tmp_path / "ckpt", tasks, version=store.version
        )
        with pytest.raises(ExecutionError, match="boom"):
            execute(tasks, store=store, checkpoint=checkpoint)
        resumed = SweepCheckpoint.for_tasks(
            tmp_path / "ckpt", tasks, version=store.version
        )
        with pytest.raises(ExecutionError, match="boom"):
            execute(tasks, store=store, checkpoint=resumed)
        assert tally.read_text().count("x") == 1

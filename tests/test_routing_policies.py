"""Conformance suite for the :class:`repro.core.RoutingPolicy` protocol.

Every policy in the registry is held to the same contract, mechanically:

* structural conformance (``isinstance`` against the runtime protocol,
  the documented attributes with sane values);
* walk invariants over a sample of routable pairs — idempotent
  ``next_hop``, in-range virtual channel classes, ``commit_hop``
  returning the decision's neighbor, delivery exactly at the
  destination, agreement with ``route_path``;
* faulty endpoints rejected with ``ValueError``;
* the per-policy deadlock obligation: an acyclic channel dependency
  graph for every fault pattern the policy accepts (restricted to the
  pairs it routes, so partial-coverage policies are checked on exactly
  their coverage);
* build determinism (two independently built relations route
  identically);
* the registry surface itself: dynamic validation errors, third-party
  registration end-to-end through ``SimulationConfig`` and a simulation,
  and the deprecation shim for ``fault_tolerant=False``.

Cross-engine bit-for-bit parity per policy lives in
``tests/test_engine_parity.py`` (GOLDEN_CONFIGS covers every registered
name).
"""

import warnings
from functools import lru_cache

import pytest

from repro.analysis.cdg import assert_deadlock_free, routable_pairs
from repro.core import FaultTolerantRouting, RoutingPolicy
from repro.core.message_types import RoutingError
from repro.core.routing_registry import (
    PolicySpec,
    build_routing,
    policy_spec,
    register_policy,
    registered_policies,
    unregister_policy,
)
from repro.sim import SimulationConfig, SimNetwork, Simulator


def _cells():
    """Every (policy, topology, fault pattern) the suite verifies: each
    registered policy on both topologies, fault-free and — when the
    policy accepts faults at all — under the paper's 1% pattern."""
    cells = []
    for name in registered_policies():
        percents = (0, 1) if policy_spec(name).handles_faults else (0,)
        for topology in ("torus", "mesh"):
            for percent in percents:
                cells.append((name, topology, percent))
    return cells


CELLS = _cells()
IDS = [f"{p}-{t}-f{f}" for p, t, f in CELLS]


@lru_cache(maxsize=None)
def _net(policy: str, topology: str, percent: int) -> SimNetwork:
    config = SimulationConfig(
        topology=topology,
        radix=8,
        dims=2,
        fault_percent=percent,
        fault_seed=7,
        routing_algorithm=policy,
        fault_tolerant=policy != "ecube",
    )
    return SimNetwork(config)


@lru_cache(maxsize=None)
def _pairs(policy: str, topology: str, percent: int):
    return tuple(routable_pairs(_net(policy, topology, percent)))


def _sample(pairs, stride=17):
    return pairs[::stride]


@pytest.mark.parametrize(("policy", "topology", "percent"), CELLS, ids=IDS)
class TestProtocolConformance:
    def test_structural_conformance(self, policy, topology, percent):
        routing = _net(policy, topology, percent).routing
        assert isinstance(routing, RoutingPolicy)
        assert routing.network is _net(policy, topology, percent).topology
        assert routing.faults is not None
        assert routing.view is not None
        assert routing.ring_index is not None
        assert isinstance(routing.supports_sharing, bool)
        assert 1 <= routing.base_vc_classes <= routing.num_vc_classes

    def test_walk_invariants(self, policy, topology, percent):
        net = _net(policy, topology, percent)
        routing = net.routing
        budget = 8 * net.topology.dims * net.topology.radix + 64
        for src, dst in _sample(_pairs(policy, topology, percent)):
            state = routing.initial_state(src, dst)
            current = src
            for _ in range(budget):
                decision = routing.next_hop(state, current)
                # idempotent: routers re-evaluate while a header waits
                assert decision == routing.next_hop(state, current)
                if decision.consume:
                    assert current == dst
                    break
                assert 0 <= decision.vc_class < routing.num_vc_classes
                nxt = routing.commit_hop(state, current, decision)
                assert nxt == net.topology.neighbor(
                    current, decision.dim, decision.direction
                ), f"commit_hop left the decision's channel at {current}"
                current = nxt
            else:
                pytest.fail(f"{policy} never delivered {src}->{dst}")

    def test_route_path_agrees(self, policy, topology, percent):
        net = _net(policy, topology, percent)
        routing = net.routing
        for src, dst in _sample(_pairs(policy, topology, percent), stride=29):
            path = routing.route_path(src, dst)
            assert path[0] == src and path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert net.topology.distance(a, b) == 1

    def test_faulty_endpoints_rejected(self, policy, topology, percent):
        net = _net(policy, topology, percent)
        node_faults = net.scenario.faults.node_faults
        if not node_faults:
            pytest.skip("pattern has no node faults")
        faulty = sorted(node_faults)[0]
        healthy = net.healthy[0]
        with pytest.raises(ValueError):
            net.routing.initial_state(faulty, healthy)
        with pytest.raises(ValueError):
            net.routing.initial_state(healthy, faulty)

    def test_cdg_acyclic(self, policy, topology, percent):
        """The per-policy deadlock obligation, restricted to the pairs
        the policy routes (its published coverage)."""
        net = _net(policy, topology, percent)
        pairs = _pairs(policy, topology, percent)
        assert assert_deadlock_free(net, include_sharing=False, pairs=pairs) > 0
        if net.routing.supports_sharing:
            assert assert_deadlock_free(net, include_sharing=True, pairs=pairs) > 0

    def test_coverage_metric_matches_routable_pairs(self, policy, topology, percent):
        net = _net(policy, topology, percent)
        coverage = getattr(net.routing, "coverage", None)
        if coverage is None:
            pytest.skip("policy publishes no coverage metric (full coverage)")
        healthy = len(net.healthy)
        fraction = len(_pairs(policy, topology, percent)) / (healthy * (healthy - 1))
        assert coverage() == pytest.approx(fraction)

    def test_build_determinism(self, policy, topology, percent):
        """Two independently built relations route every sampled pair
        identically — no hidden randomness in construction."""
        net = _net(policy, topology, percent)
        rebuilt = build_routing(policy, net.topology, net.scenario, net.config)
        for src, dst in _sample(_pairs(policy, topology, percent), stride=43):
            assert net.routing.route_path(src, dst) == rebuilt.route_path(src, dst)


class TestRegistry:
    def test_all_builtins_registered(self):
        assert {"ft", "ecube", "table", "fashion", "adaptive", "avoid"} <= set(
            registered_policies()
        )

    def test_unknown_name_lists_registered_policies(self):
        with pytest.raises(ValueError) as exc:
            SimulationConfig(routing_algorithm="chaos-walk")
        message = str(exc.value)
        assert "chaos-walk" in message
        for name in registered_policies():
            assert name in message

    def test_duplicate_name_rejected_unless_replaced(self):
        spec = policy_spec("ft")
        with pytest.raises(ValueError):
            register_policy(spec)
        assert register_policy(spec, replace=True) is spec

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_policy(PolicySpec(name="", builder=lambda n, s, c: None))

    def test_spec_surface(self):
        ecube = policy_spec("ecube")
        assert ecube.required_vcs(torus=True) == 2
        assert ecube.required_vcs(torus=False) == 1
        assert ecube.reconfigure_target() == "ft"
        assert not ecube.needs_modified_pdr
        ft = policy_spec("ft")
        assert ft.reconfigure_target() == "ft"
        assert ft.required_vcs(torus=True) == 4

    def test_ecube_builder_rejects_faults(self):
        net = _net("ft", "torus", 1)
        with pytest.raises(ValueError, match="cannot be used with faults"):
            build_routing("ecube", net.topology, net.scenario)

    def test_third_party_policy_end_to_end(self):
        """A policy registered from outside repro validates in
        SimulationConfig, simulates, and disappears cleanly again."""
        register_policy(
            PolicySpec(
                name="test-clone",
                builder=lambda network, scenario, config: (
                    FaultTolerantRouting.for_scenario(network, scenario)
                ),
                description="registration round-trip test double",
            )
        )
        try:
            assert "test-clone" in registered_policies()
            config = SimulationConfig(
                topology="torus",
                radix=8,
                dims=2,
                fault_percent=1,
                fault_seed=7,
                routing_algorithm="test-clone",
                rate=0.01,
                warmup_cycles=100,
                measure_cycles=300,
                seed=5,
            )
            assert config.effective_routing == "test-clone"
            result = Simulator(config).run()
            assert result.delivered > 0
        finally:
            unregister_policy("test-clone")
        with pytest.raises(ValueError) as exc:
            SimulationConfig(routing_algorithm="test-clone")
        assert "test-clone" not in "/".join(registered_policies())
        assert "ft" in str(exc.value)


class TestDeprecationShim:
    def test_fault_tolerant_false_without_algorithm_warns(self):
        with pytest.warns(DeprecationWarning, match="routing_algorithm='ecube'"):
            config = SimulationConfig(topology="torus", radix=8, dims=2, fault_tolerant=False)
        assert config.effective_routing == "ecube"

    def test_explicit_algorithm_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = SimulationConfig(
                topology="torus", radix=8, dims=2,
                fault_tolerant=False, routing_algorithm="ecube",
            )
        assert config.effective_routing == "ecube"

    def test_default_config_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = SimulationConfig(topology="torus", radix=8, dims=2)
        assert config.effective_routing == "ft"

"""Tests for fault campaigns: events, seeded generators, the campaign
runner and the determinism guarantee."""

import pytest

from repro.analysis import campaign_table, survivability_summary
from repro.reliability import (
    FaultCampaign,
    FaultEvent,
    ReliabilityConfig,
    ReliableTransport,
    replay_campaign,
)
from repro.sim import SimulationConfig, Simulator


def make_sim(rate=0.01, radix=8, seed=5, **kwargs):
    base = dict(
        topology="torus", radix=radix, dims=2, rate=rate,
        warmup_cycles=0, measure_cycles=10, seed=seed,
        # re-verify CDG acyclicity after every reconfiguration
        strict_invariants=True,
    )
    base.update(kwargs)
    return Simulator(SimulationConfig(**base))


class TestFaultEvent:
    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-1, nodes=((0, 0),))

    def test_empty_event_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(100)

    def test_describe_uses_label_or_contents(self):
        assert FaultEvent(1, nodes=((0, 0),), label="boom").describe() == "boom"
        text = FaultEvent(1, nodes=((0, 0),), links=(((1, 1), 0, 1),)).describe()
        assert "nodes" in text and "links" in text


class TestFaultCampaign:
    def test_events_sorted_by_cycle(self):
        campaign = FaultCampaign(
            [FaultEvent(500, nodes=((1, 1),)), FaultEvent(100, nodes=((6, 6),))]
        )
        assert [e.cycle for e in campaign] == [100, 500]
        assert len(campaign) == 2
        assert campaign.horizon == 500

    def test_empty_campaign(self):
        campaign = FaultCampaign([])
        assert len(campaign) == 0
        assert campaign.horizon == 0


class TestSeededGenerators:
    def topology(self):
        return make_sim().net.topology

    def test_rolling_deterministic_per_seed(self):
        topo = self.topology()
        a = FaultCampaign.rolling(topo, count=4, seed=3, kind="mixed")
        b = FaultCampaign.rolling(topo, count=4, seed=3, kind="mixed")
        c = FaultCampaign.rolling(topo, count=4, seed=4, kind="mixed")
        assert list(a) == list(b)
        assert list(a) != list(c)

    def test_rolling_kind_validation(self):
        with pytest.raises(ValueError):
            FaultCampaign.rolling(self.topology(), kind="meteor")

    def test_rolling_link_kind_produces_links(self):
        campaign = FaultCampaign.rolling(self.topology(), count=3, seed=1, kind="link")
        assert len(campaign) == 3
        assert all(e.links and not e.nodes for e in campaign)

    def test_rolling_events_spaced_by_interval(self):
        campaign = FaultCampaign.rolling(
            self.topology(), count=3, start=200, interval=300, seed=0
        )
        assert [e.cycle for e in campaign] == [200, 500, 800]

    def test_bursts_kill_square_blocks(self):
        campaign = FaultCampaign.bursts(self.topology(), bursts=2, burst_size=2, seed=2)
        assert len(campaign) == 2
        assert all(len(e.nodes) == 4 for e in campaign)

    def test_fail_then_grow_adds_fresh_cells_only(self):
        campaign = FaultCampaign.fail_then_grow(
            self.topology(), steps=3, start=1000, interval=1500, seed=1
        )
        # the region grows 1 -> 4 -> 9 nodes; each event carries only the
        # newly dead cells
        assert [len(e.nodes) for e in campaign] == [1, 3, 5]
        assert [e.cycle for e in campaign] == [1000, 2500, 4000]

    def test_fail_then_grow_bounds_growth(self):
        with pytest.raises(ValueError):
            FaultCampaign.fail_then_grow(self.topology(), steps=7)

    def test_generated_events_inject_cleanly_in_order(self):
        # the generators pre-validate against the cumulative fault set, so
        # replaying the timeline must never trip the fault model
        sim = make_sim()
        for _ in range(100):
            sim.step()
        campaign = FaultCampaign.rolling(sim.net.topology, count=4, seed=3, kind="mixed")
        for event in campaign:
            sim.inject_runtime_fault(nodes=event.nodes, links=event.links)
        sim.drain()
        assert sim.fault_events == len(campaign)


class TestChaosGenerator:
    def topology(self):
        return make_sim().net.topology

    def test_deterministic_per_seed(self):
        topo = self.topology()
        a = FaultCampaign.chaos(topo, count=3, seed=3)
        b = FaultCampaign.chaos(topo, count=3, seed=3)
        c = FaultCampaign.chaos(topo, count=3, seed=4)
        assert list(a) == list(b)
        assert list(a) != list(c)
        assert len(a) == 3

    def test_chaos_events_drive_degraded_staged_path(self):
        # chaos draws are NOT pre-blocked: injecting them exercises the
        # runtime degrade pipeline plus the staged detection window, with
        # strict CDG checking on (make_sim default)
        sim = make_sim(rate=0.015, detection_latency=3)
        for _ in range(150):
            sim.step()
        campaign = FaultCampaign.chaos(sim.net.topology, count=3, seed=11)
        assert len(campaign) == 3
        for event in campaign:
            sim.inject_runtime_fault(nodes=event.nodes, links=event.links)
            for _ in range(80):
                sim.step()
        sim.drain()
        assert sim.fault_events == 3
        assert sim.in_flight == 0
        assert sim.detection_cycles  # at least one window closed


class TestRunCampaign:
    def scripted(self):
        # the second event spans a full torus ring: fatal (disconnects the
        # network), so the replay records it as rejected and continues
        return FaultCampaign(
            [
                FaultEvent(300, nodes=((4, 4),), label="first"),
                FaultEvent(500, nodes=tuple((0, j) for j in range(7)), label="fatal row"),
                FaultEvent(700, nodes=((0, 0),), label="third"),
            ]
        )

    def test_rejected_event_recorded_and_campaign_continues(self):
        sim = make_sim()
        outcome = replay_campaign(sim, self.scripted(), settle_cycles=200)
        assert [r.applied for r in outcome.records] == [True, False, True]
        assert outcome.applied_events == 2
        rejected = outcome.records[1]
        assert rejected.error
        assert rejected.report is None
        assert outcome.drained
        assert sim.in_flight == 0

    def test_degrading_event_applies_with_sacrifices(self):
        # a second fault whose ring would overlap the first is no longer
        # rejected: degraded mode merges the rings and reports sacrifices
        sim = make_sim()
        campaign = FaultCampaign(
            [
                FaultEvent(300, nodes=((4, 4),), label="first"),
                FaultEvent(500, nodes=((5, 6),), label="overlaps first ring"),
            ]
        )
        outcome = replay_campaign(sim, campaign, settle_cycles=200)
        assert [r.applied for r in outcome.records] == [True, True]
        report = outcome.records[1].report
        assert report.degraded_nodes == ((4, 5), (4, 6), (5, 4), (5, 5))
        assert report.convexify_steps >= 1
        assert outcome.drained and sim.in_flight == 0

    def test_epochs_and_reports(self):
        sim = make_sim()
        outcome = replay_campaign(sim, self.scripted(), settle_cycles=200)
        assert outcome.baseline is not None
        assert outcome.baseline.delivered > 0
        for record in outcome.records:
            if record.applied:
                assert record.report is not None
                assert record.epoch is not None
        ratio = outcome.degraded_throughput_ratio
        assert ratio is not None and ratio > 0.0

    def test_recovery_times_filled_with_transport(self):
        sim = make_sim()
        ReliableTransport(sim, ReliabilityConfig(timeout=300))
        outcome = replay_campaign(sim, self.scripted(), settle_cycles=200)
        assert outcome.stats is not None
        for record in outcome.records:
            if record.applied:
                assert record.time_to_recover is not None
                assert record.time_to_recover >= 0
        assert outcome.stats.exactly_once or outcome.stats.aborted > 0

    def test_report_rendering(self):
        sim = make_sim()
        ReliableTransport(sim, ReliabilityConfig(timeout=300))
        outcome = replay_campaign(sim, self.scripted(), settle_cycles=200)
        table = campaign_table(outcome)
        assert "baseline" in table
        assert "REJECTED" in table
        summary = survivability_summary(outcome)
        assert "exactly-once delivery" in summary

    def test_empty_campaign_still_measures(self):
        sim = make_sim()
        outcome = replay_campaign(sim, FaultCampaign([]), settle_cycles=300)
        assert outcome.records == []
        assert outcome.baseline is not None
        assert outcome.baseline.delivered > 0


class TestDeterminism:
    def run_once(self):
        sim = make_sim(rate=0.012, seed=5)
        ReliableTransport(sim, ReliabilityConfig(timeout=400))
        campaign = FaultCampaign.rolling(
            sim.net.topology, count=3, start=300, interval=400, seed=9, kind="mixed"
        )
        outcome = replay_campaign(sim, campaign, settle_cycles=300)
        return sim, outcome

    def test_identical_seed_reproduces_everything(self):
        sim_a, outcome_a = self.run_once()
        sim_b, outcome_b = self.run_once()
        result_a, result_b = sim_a._result(), sim_b._result()
        assert result_a.to_json() == result_b.to_json()
        assert [r.cycle for r in outcome_a.records] == [r.cycle for r in outcome_b.records]
        assert [r.applied for r in outcome_a.records] == [
            r.applied for r in outcome_b.records
        ]
        assert [
            r.report.lost_message_ids for r in outcome_a.records if r.applied
        ] == [r.report.lost_message_ids for r in outcome_b.records if r.applied]
        assert result_a.recovery_cycles == result_b.recovery_cycles
        assert sim_a.now == sim_b.now

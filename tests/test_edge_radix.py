"""Edge-size networks: odd radices, minimum radix, tall-thin meshes.

These document behavior at the model's boundaries: the paper's networks
are 16x16, but the library must degrade gracefully (clear errors, not
wrong answers) on the degenerate cases."""

import pytest

from repro.core import FaultTolerantRouting
from repro.faults import (
    FaultSet,
    NetworkDisconnectedError,
    RingGeometryError,
    validate_fault_pattern,
)
from repro.sim import SimulationConfig, Simulator
from repro.topology import Mesh, Torus


class TestOddRadix:
    def test_odd_torus_routing_minimal(self):
        t = Torus(7, 2)
        router = FaultTolerantRouting(t)
        for src, dst in [((0, 0), (3, 3)), ((6, 6), (2, 1)), ((5, 0), (1, 6))]:
            path = router.route_path(src, dst)
            assert len(path) - 1 == t.distance(src, dst)

    def test_odd_torus_no_direction_ties(self):
        # odd radix means no equidistant destinations: every pair has a
        # strictly minimal direction
        t = Torus(7, 2)
        for a in range(7):
            for b in range(7):
                if a != b:
                    forward = (b - a) % 7
                    assert forward != 7 - forward

    def test_odd_torus_with_fault_simulates(self):
        t = Torus(7, 2)
        fs = FaultSet.of(t, nodes=[(3, 3)])
        config = SimulationConfig(
            topology="torus", radix=7, dims=2, faults=fs, rate=0.01,
            warmup_cycles=200, measure_cycles=1_000,
        )
        sim = Simulator(config)
        result = sim.run()
        sim.drain()
        assert result.delivered > 0 and sim.in_flight == 0

    def test_odd_mesh_all_pairs_with_fault(self):
        m = Mesh(5, 2)
        fs = FaultSet.of(m, nodes=[(2, 2)])
        scenario = validate_fault_pattern(m, fs)
        router = FaultTolerantRouting.for_scenario(m, scenario)
        healthy = [c for c in m.nodes() if c != (2, 2)]
        for src in healthy:
            for dst in healthy:
                if src != dst:
                    assert router.route_path(src, dst)[-1] == dst


class TestMinimumRadix:
    def test_radix3_torus_fault_free(self):
        t = Torus(3, 2)
        router = FaultTolerantRouting(t)
        nodes = list(t.nodes())
        for src in nodes:
            for dst in nodes:
                if src != dst:
                    assert router.route_path(src, dst)[-1] == dst

    def test_radix3_fault_ring_would_wrap(self):
        # a single fault's ring spans all 3 positions: rejected, since a
        # self-wrapping ring cannot support the scheme
        t = Torus(3, 2)
        fs = FaultSet.of(t, nodes=[(1, 1)])
        with pytest.raises((NetworkDisconnectedError, RingGeometryError)):
            validate_fault_pattern(t, fs)

    def test_radix4_single_fault_ok(self):
        t = Torus(4, 2)
        fs = FaultSet.of(t, nodes=[(1, 1)])
        scenario = validate_fault_pattern(t, fs)
        router = FaultTolerantRouting.for_scenario(t, scenario)
        healthy = [c for c in t.nodes() if c != (1, 1)]
        for src in healthy:
            for dst in healthy:
                if src != dst:
                    assert router.route_path(src, dst)[-1] == dst

    def test_radix2_torus_structure(self):
        # radix-2 torus: both directions reach the same neighbor over the
        # same (single) link; topology stays consistent
        t = Torus(2, 2)
        from repro.topology import Direction

        assert t.neighbor((0, 0), 0, Direction.POS) == (1, 0)
        assert t.neighbor((0, 0), 0, Direction.NEG) == (1, 0)
        assert t.num_links() == 8  # counts per-dimension ring links


class TestSmallSimulations:
    def test_radix4_3d_simulates(self):
        config = SimulationConfig(
            topology="torus", radix=4, dims=3, rate=0.01,
            warmup_cycles=200, measure_cycles=800,
        )
        sim = Simulator(config)
        result = sim.run()
        sim.drain()
        assert result.delivered > 0

    def test_odd_radix_bisection_defined(self):
        config = SimulationConfig(
            topology="mesh", radix=5, dims=2, rate=0.02,
            warmup_cycles=200, measure_cycles=800,
        )
        result = Simulator(config).run()
        assert result.bisection_bandwidth == 10
        assert result.bisection_utilization > 0

"""Service-level chaos tests: SIGKILL the campaign server mid-campaign,
restart it, retry the clients, and require bit-for-bit convergence with
the uninterrupted ``jobs=1`` ground truth plus a clean store fsck.

The small-radix case keeps the property in every tier-1 run; the 16x16
case is the acceptance test for the service's restart-recovery headline
(CI also runs the standalone harness as the ``service-smoke`` job).
"""

import pytest

from repro.service.chaos import build_specs, run_service_chaos


class TestBuildSpecs:
    def test_deterministic_job_mix(self):
        a = build_specs(radix=6)
        b = build_specs(radix=6)
        assert [spec.job_id() for spec in a] == [spec.job_id() for spec in b]
        assert [spec.kind for spec in a] == ["sweep", "campaign", "mc"]

    def test_covers_every_recovery_path(self):
        sweep, campaign, mc = build_specs(radix=6)
        # cacheable points resume via the store; campaign replays
        # re-execute deterministically; mc shards resume via the tally
        # log (no executor tasks up front — the engine drives waves)
        assert all(task.cacheable for task in sweep.build_tasks())
        assert not any(task.cacheable for task in campaign.build_tasks())
        assert mc.build_tasks() == []
        assert mc.task_total() > 0


class TestServiceChaosSmall:
    def test_kill_restart_retry_converges(self, tmp_path):
        report = run_service_chaos(
            tmp_path / "chaos",
            radix=6,
            jobs=2,
            seed=1234,
            kills=1,
            warmup=150,
            measure=400,
        )
        assert report.ok, report.describe()
        assert report.identical
        assert report.store_exact
        assert report.fsck_report.clean
        # at least the initial round ran; a kill implies a restart round
        assert report.rounds >= report.kills + 1


@pytest.mark.slow
class TestServiceChaos16x16:
    def test_acceptance_kill_and_resume(self, tmp_path):
        """The PR's acceptance property at paper scale: SIGKILL the
        server mid-campaign on a 16x16 torus, restart it, resubmit
        through the retrying client, and require every job's recovered
        result to be bit-for-bit identical to an uninterrupted jobs=1
        run, with a clean fsck and zero duplicate store entries."""
        report = run_service_chaos(
            tmp_path / "chaos16",
            radix=16,
            jobs=2,
            seed=4321,
            kills=1,
            warmup=150,
            measure=450,
            rates=(0.004, 0.008),
        )
        assert report.ok, report.describe()
        assert report.kills == 1
        assert report.rounds >= 2
        assert report.resubmissions >= 2  # every job re-submitted post-restart

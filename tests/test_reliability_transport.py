"""Tests for the end-to-end reliable delivery layer (repro.reliability)."""

import pytest

from repro.reliability import ReliabilityConfig, ReliableTransport
from repro.sim import SimulationConfig, Simulator


def quiet_sim(rate=0.0, radix=8, **kwargs):
    base = dict(
        topology="torus", radix=radix, dims=2, rate=rate,
        warmup_cycles=0, measure_cycles=10,
    )
    base.update(kwargs)
    return Simulator(SimulationConfig(**base))


class TestConfigValidation:
    def test_ack_needs_header_and_tail(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(ack_length=1)

    def test_timeout_positive(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(timeout=0)

    def test_backoff_at_least_one(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(backoff=0.5)

    def test_retries_non_negative(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(max_retries=-1)

    def test_double_attach_rejected(self):
        sim = quiet_sim()
        ReliableTransport(sim)
        with pytest.raises(ValueError):
            ReliableTransport(sim)


class TestSequenceNumbers:
    def test_per_source_sequence_assignment(self):
        sim = quiet_sim()
        ReliableTransport(sim)
        first = sim.inject_message((0, 0), (3, 0))
        second = sim.inject_message((0, 0), (5, 5))
        other = sim.inject_message((1, 1), (3, 0))
        assert (first.seq, second.seq) == (0, 1)
        assert other.seq == 0  # sequences are per source

    def test_data_messages_are_not_control(self):
        sim = quiet_sim()
        ReliableTransport(sim)
        message = sim.inject_message((0, 0), (3, 0))
        assert message.is_control is False
        assert message.ack_for is None


class TestCleanDelivery:
    def test_exactly_once_on_healthy_network(self):
        sim = quiet_sim()
        transport = ReliableTransport(sim)
        messages = [
            sim.inject_message((0, 0), (4, 4)),
            sim.inject_message((2, 1), (6, 3)),
            sim.inject_message((7, 7), (3, 3)),
        ]
        sim.drain()
        stats = transport.stats
        assert all(m.consumed_cycle is not None for m in messages)
        assert stats.tracked_generated == 3
        assert stats.unique_delivered == 3
        assert stats.lost == 0
        assert stats.exactly_once
        assert stats.retransmissions == 0
        assert stats.acks_sent == 3
        assert stats.acks_delivered == 3
        assert transport.quiescent
        assert transport.pending_flows == 0

    def test_acks_excluded_from_paper_metrics(self):
        sim = quiet_sim()
        ReliableTransport(sim)
        sim._start_measurement()
        for _ in range(4):
            sim.inject_message((0, 0), (4, 4))
        sim.drain()
        # 4 data messages were consumed; the 4 ACKs must not be counted
        assert sim.delivered == 4

    def test_ack_rides_highest_protocol_bank_by_default(self):
        sim = quiet_sim(protocol_classes=2)
        transport = ReliableTransport(sim)
        assert transport._ack_protocol() == 1

    def test_ack_protocol_override(self):
        sim = quiet_sim(protocol_classes=2)
        transport = ReliableTransport(sim, ReliabilityConfig(ack_protocol=0))
        assert transport._ack_protocol() == 0


class TestRetransmission:
    def test_backoff_progression_and_cap(self):
        sim = quiet_sim()
        transport = ReliableTransport(
            sim, ReliabilityConfig(timeout=100, backoff=2.0, max_timeout=350)
        )
        assert transport._backoff_timeout(0) == 100
        assert transport._backoff_timeout(1) == 200
        assert transport._backoff_timeout(2) == 350  # capped

    def test_spurious_timeout_duplicates_suppressed(self):
        # timeout far below the delivery latency: the source retransmits
        # even though the original is still on its way, and the sink must
        # swallow the copies
        sim = quiet_sim()
        transport = ReliableTransport(sim, ReliabilityConfig(timeout=25, backoff=1.0))
        sim.inject_message((0, 0), (4, 4))
        sim.drain()
        stats = transport.stats
        assert stats.unique_delivered == 1
        assert stats.retransmissions >= 1
        assert stats.timeouts >= 1
        assert stats.duplicates >= 1
        assert stats.exactly_once
        assert transport.quiescent

    def test_fault_kill_triggers_fast_retransmit(self):
        sim = quiet_sim()
        transport = ReliableTransport(sim)
        message = sim.inject_message((0, 0), (5, 0))
        link = None
        for _ in range(100):
            sim.step()
            for channel in sim.net.channels:
                if channel.kind.value != "internode":
                    continue
                if any(vc.message is message for vc in channel.busy):
                    link = (channel.src_node, channel.dim, int(channel.direction))
                    break
            if link is not None:
                break
        assert link is not None, "worm never reached an internode channel"
        report = sim.inject_runtime_fault(links=[link])
        assert message.msg_id in report.lost_message_ids
        sim.drain()
        stats = transport.stats
        assert stats.killed_in_flight >= 1
        assert stats.fault_retransmissions >= 1
        assert stats.unique_delivered == 1
        assert stats.exactly_once
        times = transport.recovery_times()
        assert len(times) == 1 and times[0] >= 0
        assert transport.fault_events[0].killed_flows >= 1

    def test_give_up_after_max_retries(self):
        sim = quiet_sim()
        transport = ReliableTransport(sim, ReliabilityConfig(timeout=1, max_retries=0))
        sim.inject_message((0, 0), (4, 4))
        sim.drain()
        stats = transport.stats
        assert stats.gave_up == 1
        assert stats.retransmissions == 0
        assert transport.quiescent  # an abandoned flow must not block drain


class TestAbort:
    def test_flow_to_dead_destination_aborted(self):
        sim = quiet_sim()
        transport = ReliableTransport(sim)
        sim.inject_message((0, 0), (4, 4))
        for _ in range(5):
            sim.step()
        sim.inject_runtime_fault(nodes=[(4, 4)])
        sim.drain()
        stats = transport.stats
        assert stats.aborted == 1
        assert stats.lost == 1  # unrecoverable: counted, never retried
        assert stats.retransmissions == 0
        assert transport.quiescent

    def test_flow_from_dead_source_aborted(self):
        sim = quiet_sim()
        transport = ReliableTransport(sim)
        sim.inject_message((4, 4), (0, 0))
        for _ in range(5):
            sim.step()
        sim.inject_runtime_fault(nodes=[(4, 4)])
        sim.drain()
        assert transport.stats.aborted == 1
        assert transport.stats.unique_delivered == 0


class TestEnqueueMessage:
    def test_enqueue_at_dead_node_rejected(self):
        sim = quiet_sim()
        sim.inject_runtime_fault(nodes=[(4, 4)])
        with pytest.raises(ValueError):
            sim.enqueue_message((4, 4), (0, 0))

    def test_enqueue_bypasses_flow_tracking(self):
        sim = quiet_sim()
        transport = ReliableTransport(sim)
        sim.enqueue_message((0, 0), (3, 3))
        assert transport.stats.tracked_generated == 0
        sim.drain()  # still delivered like any worm
        assert sim.in_flight == 0

"""Classifier unit tests plus the fuzz harness.

The fuzz property: ``classify_pattern`` (and beneath it
``degrade_fault_pattern``) must never raise on a random pattern — fatal
geometries are a *verdict*, not an exception — and every surviving
pattern's degraded scenario must itself pass ``validate_fault_pattern``.
"""

import random

import pytest

from repro.faults.fault_model import FaultSet
from repro.faults.generation import degrade_fault_pattern, validate_fault_pattern
from repro.mc import (
    DEGRADED,
    FATAL,
    FATAL_EXCEPTIONS,
    ROUTABLE,
    PatternSampler,
    classify_pattern,
    max_link_faults,
)
from repro.topology import Torus

#: patterns per (topology, fault-count) fuzz bucket; the satellite
#: requirement is >= 500 per topology, spread over varying k
FUZZ_PER_BUCKET = 125


def fuzz_patterns(radix, buckets, *, seed=11):
    """Deterministic fuzz stream: ``FUZZ_PER_BUCKET`` seeded draws per
    (node, link) fault-count bucket."""
    network = Torus(radix, 2)
    for bucket_index, (nodes, links) in enumerate(buckets):
        sampler = PatternSampler(
            network,
            nodes,
            links,
            master_seed=seed,
            cell_key=f"fuzz{radix}:{bucket_index}",
        )
        for index in range(FUZZ_PER_BUCKET):
            yield network, sampler.draw(index)


class TestClassifyVerdicts:
    def test_empty_pattern_is_routable(self):
        verdict = classify_pattern(Torus(4, 2), FaultSet())
        assert verdict.label == ROUTABLE
        assert verdict.survives
        assert verdict.sacrificed == 0

    def test_labels_partition_outcomes(self):
        network = Torus(4, 2)
        sampler = PatternSampler(
            network, 1, 1, master_seed=7, cell_key="partition"
        )
        seen = set()
        for index in range(120):
            verdict = classify_pattern(network, sampler.draw(index))
            assert verdict.label in (ROUTABLE, DEGRADED, FATAL)
            assert verdict.survives == (verdict.label != FATAL)
            if verdict.label == FATAL:
                assert verdict.reason
            seen.add(verdict.label)
        assert FATAL in seen  # 4x4 is small enough that some draws disconnect

    def test_degraded_means_sacrifice_or_merge(self):
        network = Torus(8, 2)
        sampler = PatternSampler(network, 2, 2, master_seed=7, cell_key="deg")
        for index in range(150):
            verdict = classify_pattern(network, sampler.draw(index))
            if verdict.label == DEGRADED:
                assert verdict.sacrificed > 0 or verdict.merges > 0
            elif verdict.label == ROUTABLE:
                assert verdict.sacrificed == 0 and verdict.merges == 0

    def test_policy_failures_are_fatal_verdicts(self):
        """ecube accepts no faults at all: under it every non-empty
        pattern classifies fatal (with the policy named in the reason),
        never raises."""
        network = Torus(8, 2)
        sampler = PatternSampler(network, 1, 0, master_seed=7, cell_key="ec")
        verdict = classify_pattern(network, sampler.draw(0), policy="ecube")
        assert verdict.label == FATAL
        assert verdict.reason.startswith("policy-ecube")
        # the same pattern without the policy constraint survives or not
        # on geometry alone — the policy only ever removes survivors
        bare = classify_pattern(network, sampler.draw(0))
        assert bare.label in (ROUTABLE, DEGRADED, FATAL)

    def test_fatal_exceptions_documented(self):
        names = {exc.__name__ for exc in FATAL_EXCEPTIONS}
        assert "NetworkDisconnectedError" in names
        assert "RingGeometryError" in names


def _buckets(radix):
    network = Torus(radix, 2)
    ladder = [(0, 1), (1, 0), (1, 1), (2, 2)]
    # one deliberately nasty bucket near the small network's link budget
    heavy_links = min(6, max_link_faults(network, 2))
    ladder.append((2, heavy_links))
    return ladder


class TestFuzzNeverRaises:
    """Satellite requirement: >= 500 random patterns per topology with
    varying k; the classifier must return a verdict for every one, and
    the degraded scenario of every survivor must re-validate."""

    @pytest.mark.parametrize("radix", [4, 8])
    def test_fuzz_small_radii(self, radix):
        self._fuzz(radix)

    @pytest.mark.slow
    def test_fuzz_16x16(self):
        self._fuzz(16)

    @staticmethod
    def _fuzz(radix):
        total = 0
        survivors = 0
        for network, faults in fuzz_patterns(radix, _buckets(radix)):
            verdict = classify_pattern(network, faults)  # must not raise
            total += 1
            if not verdict.survives:
                continue
            survivors += 1
            # the degraded output must be a *valid* block pattern
            scenario, info = degrade_fault_pattern(network, faults)
            validate_fault_pattern(network, scenario.faults)
            assert scenario.faults.node_faults >= faults.node_faults
            assert len(info.degraded_nodes) == verdict.sacrificed
        assert total >= 500
        assert survivors > 0


class TestFuzzDeterminism:
    def test_fuzz_stream_is_seeded(self):
        a = [faults for _, faults in fuzz_patterns(4, [(1, 1)])]
        b = [faults for _, faults in fuzz_patterns(4, [(1, 1)])]
        assert a == b

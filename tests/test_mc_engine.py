"""Tests for the MC engine: determinism, early stopping, and the
exact-enumeration acceptance gate.

The load-bearing property: an estimate is a pure function of
(master seed, cell, settings) — the same bits whether shards ran
serially, in parallel waves, or across a crash/resume boundary.
"""

import pytest

from repro.mc import (
    MCCell,
    MCPlan,
    MCSettings,
    MCShardTask,
    ShardTally,
    TallyLog,
    exact_classification,
    run_cell,
    run_plan,
)

CELL = MCCell(radix=4, num_node_faults=1, num_link_faults=1)
SETTINGS = MCSettings(half_width=0.05, shard_size=50, max_shards=8, min_shards=2)


class TestCellAndPlan:
    def test_cell_key_stable(self):
        assert CELL.key() == "torus4d2:n1:l1:p=-:ov0:cdg0"

    def test_cell_payload_roundtrip(self):
        assert MCCell.from_payload(CELL.to_payload()) == CELL

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MCCell(radix=4, policy="no-such-policy").validate()

    def test_out_of_range_faults_rejected(self):
        with pytest.raises(ValueError):
            MCCell(radix=4, num_node_faults=17).validate()
        with pytest.raises(ValueError):
            MCCell(radix=4, num_link_faults=10**6).validate()

    def test_plan_rejects_duplicate_cells(self):
        with pytest.raises(ValueError):
            MCPlan(cells=(CELL, CELL)).validate()

    def test_plan_rejects_empty(self):
        with pytest.raises(ValueError):
            MCPlan(cells=()).validate()

    def test_settings_validate(self):
        with pytest.raises(ValueError):
            MCSettings(method="wald").validate()
        with pytest.raises(ValueError):
            MCSettings(min_shards=5, max_shards=3).validate()

    def test_plan_payload_roundtrip(self):
        plan = MCPlan(cells=(CELL,), settings=SETTINGS, master_seed=3)
        again = MCPlan.from_payload(plan.to_payload())
        assert again == plan
        assert again.plan_key() == plan.plan_key()


class TestShardTask:
    def test_checkpoint_key_identifies_the_shard(self):
        a = MCShardTask(cell=CELL, master_seed=7, shard_index=0, shard_size=50)
        b = MCShardTask(cell=CELL, master_seed=7, shard_index=1, shard_size=50)
        c = MCShardTask(cell=CELL, master_seed=8, shard_index=0, shard_size=50)
        assert len({a.checkpoint_key(), b.checkpoint_key(), c.checkpoint_key()}) == 3
        assert a.checkpoint_key() == MCShardTask(
            cell=CELL, master_seed=7, shard_index=0, shard_size=50
        ).checkpoint_key()

    def test_not_cacheable(self):
        # mc tallies must never land in the SimulationConfig result store
        assert MCShardTask.cacheable is False
        assert MCShardTask.kind == "mc-shard"

    def test_execute_covers_exactly_its_indices(self):
        task = MCShardTask(cell=CELL, master_seed=7, shard_index=2, shard_size=10)
        payload = task.execute()
        assert payload["count"] == 10
        assert payload["start"] == 20


class TestDeterminism:
    def test_serial_equals_parallel(self):
        serial = run_cell(CELL, SETTINGS, master_seed=7, jobs=1)
        parallel = run_cell(CELL, SETTINGS, master_seed=7, jobs=3)
        assert serial.to_payload() == parallel.to_payload()
        assert serial.digest() == parallel.digest()

    def test_resume_is_bit_for_bit(self, tmp_path):
        uninterrupted = run_cell(CELL, SETTINGS, master_seed=7, jobs=1)

        # a "crashed" first attempt: only some shards reached the log
        partial = TallyLog(tmp_path / "tallies.jsonl")
        for shard_index in range(2):
            task = MCShardTask(
                cell=CELL,
                master_seed=7,
                shard_index=shard_index,
                shard_size=SETTINGS.shard_size,
                reservoir_cap=SETTINGS.reservoir,
            )
            partial.append(
                task.checkpoint_key(), ShardTally.from_payload(task.execute())
            )

        resumed = run_cell(
            CELL,
            SETTINGS,
            master_seed=7,
            jobs=2,
            tally_log=TallyLog(tmp_path / "tallies.jsonl"),
        )
        assert resumed.to_payload() == uninterrupted.to_payload()

    def test_rerun_with_full_log_executes_nothing(self, tmp_path):
        log_path = tmp_path / "tallies.jsonl"
        first = run_cell(CELL, SETTINGS, master_seed=7, tally_log=TallyLog(log_path))
        stats_parts = []
        second = run_cell(
            CELL,
            SETTINGS,
            master_seed=7,
            tally_log=TallyLog(log_path),
            stats_parts=stats_parts,
        )
        assert second.to_payload() == first.to_payload()
        assert stats_parts == []  # every shard served from the log

    def test_seed_changes_the_estimate_stream(self):
        a = run_cell(CELL, SETTINGS, master_seed=7)
        b = run_cell(CELL, SETTINGS, master_seed=8)
        assert a.reservoirs != b.reservoirs or a.counts != b.counts


class TestEarlyStopping:
    def test_stops_before_budget_on_loose_target(self):
        loose = MCSettings(half_width=0.2, shard_size=50, max_shards=8, min_shards=2)
        estimate = run_cell(CELL, loose, master_seed=7)
        assert estimate.early_stopped
        assert estimate.n < loose.max_samples
        assert estimate.half_width <= loose.half_width

    def test_budget_exhaustion_reported(self):
        # a target far below what the budget can reach: no early stop
        tight = MCSettings(half_width=0.001, shard_size=20, max_shards=3)
        estimate = run_cell(CELL, tight, master_seed=7)
        assert not estimate.early_stopped
        assert estimate.n == tight.max_samples

    def test_min_shards_respected(self):
        # half_width=0.2 is met by one shard; min_shards=4 must override
        loose = MCSettings(half_width=0.2, shard_size=50, max_shards=8, min_shards=4)
        estimate = run_cell(CELL, loose, master_seed=7)
        assert estimate.shards_used >= 4

    def test_stop_point_independent_of_wave_size(self):
        for jobs in (1, 2, 5):
            estimate = run_cell(CELL, SETTINGS, master_seed=7, jobs=jobs)
            assert estimate.shards_used == run_cell(
                CELL, SETTINGS, master_seed=7, jobs=1
            ).shards_used


class TestExactAgreement:
    """The acceptance gate: on the enumerable 4x4 torus with k <= 2
    total faults, the MC estimate must agree with the exact brute-force
    probability within its reported confidence interval."""

    @pytest.mark.parametrize("nodes,links", [(1, 0), (0, 1), (1, 1), (0, 2), (2, 0)])
    def test_exact_within_ci(self, nodes, links):
        cell = MCCell(radix=4, num_node_faults=nodes, num_link_faults=links)
        exact = exact_classification(cell.network(), nodes, links)
        settings = MCSettings(
            half_width=0.05, shard_size=100, max_shards=10, min_shards=2
        )
        estimate = run_cell(cell, settings, master_seed=7)
        assert estimate.lo - 1e-9 <= exact.p_survive <= estimate.hi + 1e-9, (
            f"exact {exact.p_survive:.4f} outside "
            f"[{estimate.lo:.4f}, {estimate.hi:.4f}] for {cell.key()}"
        )

    def test_exact_distribution_sums_to_one(self):
        exact = exact_classification(CELL.network(), 1, 1)
        assert sum(exact.probabilities.values()) == pytest.approx(1.0, abs=1e-12)
        assert exact.patterns > 0


class TestRunPlan:
    def test_plan_runs_every_cell_and_reports_progress(self, tmp_path):
        plan = MCPlan(
            cells=(
                MCCell(radix=4, num_node_faults=1, num_link_faults=0),
                MCCell(radix=4, num_node_faults=0, num_link_faults=1),
            ),
            settings=MCSettings(half_width=0.1, shard_size=30, max_shards=4),
            master_seed=7,
        )
        events = []
        outcome = run_plan(
            plan, tally_log=tmp_path / "t.jsonl", progress=events.append
        )
        assert len(outcome.estimates) == 2
        assert [e.cell.key() for e in outcome.estimates] == [
            cell.key() for cell in plan.cells
        ]
        assert outcome.shards_executed > 0
        assert any(event.stopped for event in events)
        # the run folded executor stats for every executed shard
        assert outcome.stats.executed == outcome.shards_executed

    def test_plan_resume_via_path(self, tmp_path):
        plan = MCPlan(
            cells=(CELL,),
            settings=MCSettings(half_width=0.1, shard_size=30, max_shards=4),
        )
        first = run_plan(plan, tally_log=tmp_path / "t.jsonl")
        second = run_plan(plan, tally_log=tmp_path / "t.jsonl")
        assert second.shards_executed == 0
        assert second.shards_resumed > 0
        assert second.to_payload() == first.to_payload()

"""Tests for the stdlib binomial interval estimators."""

import math

import pytest

from repro.mc import (
    binomial_interval,
    clopper_pearson_interval,
    half_width,
    samples_for_half_width,
    wilson_interval,
)


class TestWilson:
    def test_known_value(self):
        # canonical worked example: 45/100 at 95%
        lo, hi = wilson_interval(45, 100)
        assert lo == pytest.approx(0.3561, abs=5e-4)
        assert hi == pytest.approx(0.5476, abs=5e-4)

    def test_contains_point_estimate(self):
        for s, n in [(0, 10), (3, 10), (10, 10), (250, 1000)]:
            lo, hi = wilson_interval(s, n)
            assert lo <= s / n <= hi

    def test_no_collapse_at_extremes(self):
        # the reason Wilson is the default: p-hat = 1 still has width
        lo, hi = wilson_interval(50, 50)
        assert hi == 1.0
        assert lo < 1.0
        lo, hi = wilson_interval(0, 50)
        assert lo == 0.0
        assert hi > 0.0

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrows_with_samples(self):
        widths = [half_width(wilson_interval(n // 2, n)) for n in (10, 100, 1000)]
        assert widths == sorted(widths, reverse=True)

    def test_bad_tally_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 3, confidence=1.0)


class TestClopperPearson:
    def test_known_value(self):
        lo, hi = clopper_pearson_interval(45, 100)
        assert lo == pytest.approx(0.3503, abs=5e-4)
        assert hi == pytest.approx(0.5527, abs=5e-4)

    def test_conservative_vs_wilson(self):
        # exact tail inversion is at least as wide as the score interval
        for s, n in [(1, 20), (45, 100), (99, 100)]:
            assert half_width(clopper_pearson_interval(s, n)) >= half_width(
                wilson_interval(s, n)
            ) - 1e-12

    def test_extremes(self):
        lo, hi = clopper_pearson_interval(0, 30)
        assert lo == 0.0
        # closed form at s=0: hi = 1 - (alpha/2)^(1/n)
        assert hi == pytest.approx(1.0 - (0.025) ** (1 / 30), abs=1e-6)
        lo, hi = clopper_pearson_interval(30, 30)
        assert hi == 1.0
        assert lo == pytest.approx((0.025) ** (1 / 30), abs=1e-6)

    def test_zero_trials_is_vacuous(self):
        assert clopper_pearson_interval(0, 0) == (0.0, 1.0)


class TestDispatch:
    def test_methods(self):
        assert binomial_interval(5, 10, method="wilson") == wilson_interval(5, 10)
        assert binomial_interval(5, 10, method="clopper-pearson") == (
            clopper_pearson_interval(5, 10)
        )

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            binomial_interval(5, 10, method="wald")


class TestPlanning:
    def test_samples_for_half_width(self):
        # the classic +/-0.01 at 95% needs ~9604 worst-case samples
        assert samples_for_half_width(0.01) == 9604
        assert samples_for_half_width(0.05) == 385

    def test_monotone_in_target(self):
        assert samples_for_half_width(0.005) > samples_for_half_width(0.01)

    def test_bad_target(self):
        with pytest.raises(ValueError):
            samples_for_half_width(0.0)

    def test_wilson_meets_planned_width(self):
        n = samples_for_half_width(0.02)
        assert half_width(wilson_interval(n // 2, n)) <= 0.02 + 1e-9
        assert not math.isnan(n)

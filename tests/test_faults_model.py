"""Unit tests for fault sets and the local fault view."""

import pytest

from repro.faults import FaultSet, LocalFaultView
from repro.topology import BiLink, Direction, Mesh, Torus


class TestFaultSet:
    def test_empty(self):
        assert FaultSet().empty
        assert not FaultSet(node_faults=frozenset({(0, 0)})).empty

    def test_of_constructor_links(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, links=[((1, 1), 0, Direction.POS)])
        assert BiLink((1, 1), (2, 1), 0) in fs.link_faults

    def test_of_constructor_boundary_link_raises(self):
        m = Mesh(8, 2)
        with pytest.raises(ValueError):
            FaultSet.of(m, links=[((7, 0), 0, Direction.POS)])

    def test_node_fault_implies_incident_links(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(3, 3)])
        links = fs.all_faulty_links(t)
        assert len(links) == 4
        assert BiLink((2, 3), (3, 3), 0) in links

    def test_faulty_link_fraction_paper_percentages(self):
        t = Torus(16, 2)
        one_pct = FaultSet.of(t, nodes=[(3, 3)], links=[((10, 10), 0, Direction.POS)])
        assert 0.009 < one_pct.faulty_link_fraction(t) < 0.011

    def test_is_hop_faulty_cases(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(3, 3)], links=[((5, 5), 1, Direction.POS)])
        assert fs.is_hop_faulty(t, (2, 3), 0, Direction.POS)  # into faulty node
        assert fs.is_hop_faulty(t, (3, 3), 0, Direction.POS)  # out of faulty node
        assert fs.is_hop_faulty(t, (5, 5), 1, Direction.POS)  # faulty link
        assert fs.is_hop_faulty(t, (5, 6), 1, Direction.NEG)  # same link, other way
        assert not fs.is_hop_faulty(t, (0, 0), 0, Direction.POS)

    def test_mesh_boundary_hop_is_faulty(self):
        m = Mesh(8, 2)
        assert FaultSet().is_hop_faulty(m, (7, 0), 0, Direction.POS)

    def test_merge_and_with_nodes(self):
        a = FaultSet(node_faults=frozenset({(0, 0)}))
        b = FaultSet(node_faults=frozenset({(1, 1)}))
        merged = a.merged_with(b)
        assert merged.node_faults == {(0, 0), (1, 1)}
        assert a.with_nodes([(2, 2)]).node_faults == {(0, 0), (2, 2)}


class TestLocalFaultView:
    def test_hop_blocked_matches_fault_set(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(3, 3)])
        view = LocalFaultView(t, fs)
        assert view.hop_blocked((2, 3), 0, Direction.POS)
        assert not view.hop_blocked((0, 0), 0, Direction.POS)

    def test_mesh_boundary_blocked(self):
        m = Mesh(4, 2)
        view = LocalFaultView(m, FaultSet())
        assert view.hop_blocked((3, 0), 0, Direction.POS)

    def test_node_usable(self):
        t = Torus(8, 2)
        view = LocalFaultView(t, FaultSet.of(t, nodes=[(3, 3)]))
        assert not view.node_usable((3, 3))
        assert view.node_usable((3, 4))

    def test_blocking_fault_target(self):
        t = Torus(8, 2)
        view = LocalFaultView(t, FaultSet())
        assert view.blocking_fault_target((7, 0), 0, Direction.POS) == (0, 0)

"""Unit and behavior tests for the flit-level simulator engine."""

import pytest

from repro.router import UNPIPELINED
from repro.sim import DeadlockError, SimulationConfig, Simulator


def quiet_config(**kwargs):
    defaults = dict(
        topology="torus",
        radix=8,
        dims=2,
        rate=0.0,
        warmup_cycles=0,
        measure_cycles=10,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestSingleMessage:
    def test_delivered_with_expected_latency(self):
        sim = Simulator(quiet_config())
        message = sim.inject_message((1, 0), (2, 0))
        for _ in range(200):
            sim.step()
            if message.consumed_cycle is not None:
                break
        # one internode hop; 20 flits; injection + internode + interchip +
        # delivery channels with 3/2-cycle module delays: ~28 cycles
        assert message.consumed_cycle is not None
        assert 24 <= message.latency <= 40

    def test_unpipelined_is_faster(self):
        lat = {}
        for timing in (None, UNPIPELINED):
            config = quiet_config() if timing is None else quiet_config(timing=timing)
            sim = Simulator(config)
            message = sim.inject_message((0, 0), (4, 4))
            for _ in range(300):
                sim.step()
                if message.consumed_cycle is not None:
                    break
            lat[config.timing.name] = message.latency
        assert lat["unpipelined"] < lat["pipelined"]

    def test_longer_path_longer_latency(self):
        sim = Simulator(quiet_config())
        near = sim.inject_message((0, 0), (1, 0))
        far = sim.inject_message((0, 1), (4, 5))
        sim.drain()
        assert far.latency > near.latency

    def test_queueing_delay_accounted(self):
        sim = Simulator(quiet_config())
        first = sim.inject_message((0, 0), (4, 0))
        second = sim.inject_message((0, 0), (4, 1))
        third = sim.inject_message((0, 0), (4, 2))
        sim.drain()
        assert first.queueing_delay == 0
        assert third.queueing_delay >= 0
        assert third.injected_cycle >= first.injected_cycle


class TestInjectionLimit:
    def test_at_most_two_outstanding(self):
        config = quiet_config(injection_limit=2)
        sim = Simulator(config)
        for i in range(6):
            sim.inject_message((0, 0), (4, i))
        max_outstanding = 0
        for _ in range(400):
            sim.step()
            max_outstanding = max(max_outstanding, sim.outstanding[(0, 0)])
            if sim.in_flight == 0 and not sim.queues[(0, 0)]:
                break
        assert max_outstanding <= 2

    def test_limit_one_serializes(self):
        config = quiet_config(injection_limit=1)
        sim = Simulator(config)
        a = sim.inject_message((0, 0), (4, 0))
        b = sim.inject_message((0, 0), (4, 1))
        sim.drain()
        assert b.injected_cycle > a.injected_cycle


class TestWormholeSemantics:
    def test_flits_arrive_in_order_and_complete(self):
        sim = Simulator(quiet_config())
        messages = [sim.inject_message((0, y), (5, y)) for y in range(4)]
        sim.drain()
        for message in messages:
            assert message.consumed_cycle is not None
            assert message.source.sent == message.length

    def test_worm_holds_channels_until_tail(self):
        # A head-of-line blocked worm must not be overtaken on its own VC:
        # all messages between the same pair arrive in injection order.
        sim = Simulator(quiet_config())
        messages = [sim.inject_message((0, 0), (6, 3)) for _ in range(4)]
        sim.drain()
        consumed = [m.consumed_cycle for m in messages]
        assert consumed == sorted(consumed)


class TestStochasticRuns:
    def test_all_injected_eventually_delivered(self):
        config = quiet_config(rate=0.02, warmup_cycles=0, measure_cycles=1500)
        sim = Simulator(config)
        result = sim.run()
        sim.drain()
        assert sim.in_flight == 0
        assert result.delivered > 0

    def test_deterministic_given_seed(self):
        r1 = Simulator(quiet_config(rate=0.01, measure_cycles=800, seed=5)).run()
        r2 = Simulator(quiet_config(rate=0.01, measure_cycles=800, seed=5)).run()
        assert r1.delivered == r2.delivered
        assert r1.avg_latency == r2.avg_latency

    def test_different_seeds_differ(self):
        r1 = Simulator(quiet_config(rate=0.01, measure_cycles=800, seed=5)).run()
        r2 = Simulator(quiet_config(rate=0.01, measure_cycles=800, seed=6)).run()
        assert (r1.delivered, r1.avg_latency) != (r2.delivered, r2.avg_latency)

    def test_faulty_network_run_and_drain(self):
        config = quiet_config(rate=0.015, measure_cycles=1200, fault_percent=5)
        sim = Simulator(config)
        result = sim.run()
        sim.drain()
        assert result.misrouted_messages > 0
        assert sim.in_flight == 0

    def test_throughput_tracks_load_below_saturation(self):
        low = Simulator(quiet_config(rate=0.004, warmup_cycles=400, measure_cycles=1500)).run()
        mid = Simulator(quiet_config(rate=0.008, warmup_cycles=400, measure_cycles=1500)).run()
        assert mid.throughput_flits_per_cycle > 1.5 * low.throughput_flits_per_cycle
        # delivered ~= offered below saturation (64 nodes * rate * cycles)
        offered = 64 * 0.004 * 1500
        assert abs(low.delivered - offered) / offered < 0.2


class TestWatchdog:
    def test_no_false_positive_when_idle(self):
        config = quiet_config(measure_cycles=100, deadlock_threshold=20)
        sim = Simulator(config)
        sim.run()  # nothing in flight: watchdog must not fire

    def test_fires_on_artificial_stall(self):
        config = quiet_config(deadlock_threshold=50)
        sim = Simulator(config)
        message = sim.inject_message((0, 0), (4, 0))
        sim.step()
        # sabotage: freeze the worm by emptying every eligibility queue
        # each step so no flit can ever move again
        with pytest.raises(DeadlockError):
            for _ in range(200):
                for channel in sim.net.channels:
                    for vc in channel.vcs:
                        vc.eligible.clear()
                        if vc.message is not None:
                            vc.received = max(vc.received, 1)
                sim.step()

    def test_error_carries_report(self):
        try:
            self.test_fires_on_artificial_stall()
        except Exception:
            pytest.fail("expected clean DeadlockError handling")

    def test_error_carries_structured_snapshot(self):
        config = quiet_config(deadlock_threshold=50)
        sim = Simulator(config)
        message = sim.inject_message((0, 0), (4, 0))
        sim.step()
        with pytest.raises(DeadlockError) as excinfo:
            for _ in range(200):
                for channel in sim.net.channels:
                    for vc in channel.vcs:
                        vc.eligible.clear()
                        if vc.message is not None:
                            vc.received = max(vc.received, 1)
                sim.step()
        error = excinfo.value
        assert error.cycle > 0
        assert error.worms, "snapshot must name the stuck worms"
        worm = error.worms[0]
        assert worm.msg_id == message.msg_id
        assert (worm.src, worm.dst) == ((0, 0), (4, 0))
        assert error.total_busy >= len(error.worms)
        assert not error.truncated
        assert f"msg#{message.msg_id}" in error.report
        assert str(error.cycle) in str(error)


class TestDeadlockSnapshot:
    def busy_channels(self):
        sim = Simulator(quiet_config(rate=0.05))
        for _ in range(300):
            sim.step()
        return sim.net.channels

    def test_snapshot_truncation_is_reported(self):
        from repro.sim import stuck_worm_snapshot
        from repro.sim.deadlock import format_stuck_worms

        channels = self.busy_channels()
        worms, total = stuck_worm_snapshot(channels, limit=2)
        assert len(worms) == 2
        assert total > 2
        report = format_stuck_worms(worms, total)
        assert "snapshot truncated" in report
        assert f"showing 2 of {total}" in report

    def test_untruncated_snapshot_has_no_note(self):
        from repro.sim import stuck_worm_snapshot
        from repro.sim.deadlock import format_stuck_worms

        channels = self.busy_channels()
        worms, total = stuck_worm_snapshot(channels, limit=10_000)
        assert len(worms) == total
        assert "snapshot truncated" not in format_stuck_worms(worms, total)

    def test_legacy_string_report_still_accepted(self):
        error = DeadlockError(42, "  custom diagnostic")
        assert error.cycle == 42
        assert error.report == "  custom diagnostic"
        assert error.worms == []
        assert not error.truncated


class TestBisectionAccounting:
    def test_bisection_messages_counted(self):
        config = quiet_config(rate=0.01, warmup_cycles=200, measure_cycles=1500)
        result = Simulator(config).run()
        assert 0 < result.bisection_messages < result.delivered
        assert 0.0 < result.bisection_utilization < 1.0

    def test_utilization_zero_at_zero_load(self):
        result = Simulator(quiet_config(measure_cycles=50)).run()
        assert result.bisection_utilization == 0.0

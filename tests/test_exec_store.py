"""Tests for config canonicalization, content hashing, and the on-disk
result store (repro.exec.store) — including the crash-safety layer: the
write-ahead journal and stale-temp garbage collection on open."""

import dataclasses
import json
import os
import subprocess
import sys
import time

import pytest

from repro.exec.store import CODE_VERSION, ResultStore, default_store_root, pid_alive
from repro.faults import FaultSet
from repro.router import UNPIPELINED
from repro.sim import SimulationConfig, Simulator
from repro.topology import Torus


def config(**kwargs):
    defaults = dict(
        topology="torus",
        radix=6,
        dims=2,
        rate=0.01,
        warmup_cycles=100,
        measure_cycles=400,
        seed=9,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestCanonicalForm:
    def test_round_trip(self):
        original = config(timing=UNPIPELINED, fault_percent=1, fault_seed=3)
        rebuilt = SimulationConfig.from_canonical(original.to_canonical())
        assert rebuilt == original

    def test_round_trip_with_explicit_faults(self):
        torus = Torus(6, 2)
        faults = FaultSet.of(torus, nodes=[(2, 2)], links=[((0, 0), 0, 1)])
        original = config(faults=faults)
        rebuilt = SimulationConfig.from_canonical(original.to_canonical())
        assert rebuilt.content_hash() == original.content_hash()

    def test_canonical_is_json_serializable(self):
        torus = Torus(6, 2)
        canonical = config(faults=FaultSet.of(torus, nodes=[(1, 1)])).to_canonical()
        json.dumps(canonical)  # must not raise

    def test_covers_every_field(self):
        """New config fields automatically enter the canonical form (and
        therefore the hash) — a stale cache hit is structurally
        impossible."""
        canonical = config().to_canonical()
        for spec in dataclasses.fields(SimulationConfig):
            assert spec.name in canonical


class TestContentHash:
    def test_deterministic_across_instances(self):
        assert config().content_hash() == config().content_hash()

    def test_every_field_change_invalidates(self):
        base = config()
        base_hash = base.content_hash()
        variants = dict(
            topology="mesh",
            radix=8,
            dims=3,
            rate=0.02,
            message_length=4,
            warmup_cycles=101,
            measure_cycles=401,
            seed=10,
            fault_percent=1,
            fault_seed=2,
            traffic="transpose",
            timing=UNPIPELINED,
            router_model="crossbar",
            share_idle_vcs=False,
            collect_latencies=True,
        )
        for name, value in variants.items():
            changed = dataclasses.replace(base, **{name: value})
            assert changed.content_hash() != base_hash, name

    def test_version_tag_invalidates(self):
        assert config().content_hash("sim-v1") != config().content_hash("sim-v2")

    def test_network_signature_ignores_load_fields(self):
        """Configs differing only in traffic/measurement fields may share
        a network; topology-affecting fields may not."""
        base = config()
        assert base.network_signature() == config(
            rate=0.05, seed=77, measure_cycles=900, traffic="hotspot"
        ).network_signature()
        assert base.network_signature() != config(fault_percent=1).network_signature()
        assert base.network_signature() != config(radix=8).network_signature()


class TestResultStore:
    @pytest.fixture()
    def store(self, tmp_path):
        return ResultStore(tmp_path / "results")

    @pytest.fixture(scope="class")
    def result(self):
        return Simulator(config()).run()

    def test_miss_then_hit(self, store, result):
        cfg = config()
        assert cfg not in store
        assert store.load(cfg) is None
        store.store(cfg, result)
        assert cfg in store
        assert store.load(cfg) == result

    def test_distinct_configs_distinct_entries(self, store, result):
        store.store(config(), result)
        store.store(config(rate=0.02), result)
        assert len(store) == 2
        assert config(rate=0.02) in store and config(rate=0.03) not in store

    def test_version_tag_scopes_entries(self, tmp_path, result):
        old = ResultStore(tmp_path, version=CODE_VERSION)
        new = ResultStore(tmp_path, version=CODE_VERSION + ".post")
        old.store(config(), result)
        assert config() in old
        assert config() not in new  # same directory, different code version

    def test_corrupt_entry_reads_as_miss(self, store, result):
        cfg = config()
        path = store.store(cfg, result)
        path.write_text("{ torn json", encoding="utf-8")
        assert store.load(cfg) is None

    def test_clear(self, store, result):
        store.store(config(), result)
        store.store(config(rate=0.02), result)
        assert store.clear() == 2
        assert len(store) == 0
        assert store.clear() == 0  # idempotent on an empty store

    def test_default_root_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "env-store"))
        assert default_store_root() == tmp_path / "env-store"
        assert ResultStore().root == tmp_path / "env-store"


@pytest.fixture(scope="module")
def result():
    return Simulator(config()).run()


def dead_pid():
    """A pid that provably names no live process: a child we already
    reaped."""
    proc = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True,
        text=True,
        check=True,
    )
    return int(proc.stdout.strip())


def plant_temp(store, name="leftover.tmp", age=0.0):
    shard = store.root / "ab"
    shard.mkdir(parents=True, exist_ok=True)
    tmp = shard / name
    tmp.write_text("half a result", encoding="utf-8")
    if age:
        past = time.time() - age
        os.utime(tmp, (past, past))
    return tmp


def plant_begin(store, tmp, pid):
    """A journaled *begin* with no *commit* — an in-flight write."""
    record = {
        "op": "begin",
        "key": "k" * 64,
        "pid": pid,
        "time": time.time(),
        "tmp": os.path.relpath(tmp, store.root),
    }
    store.root.mkdir(parents=True, exist_ok=True)
    with open(store.journal_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record) + "\n")


class TestCrashSafety:
    def test_pid_alive(self):
        assert pid_alive(os.getpid())
        assert not pid_alive(dead_pid())
        assert not pid_alive(-1) and not pid_alive(0)

    def test_store_brackets_writes_in_the_journal(self, tmp_path, result):
        store = ResultStore(tmp_path / "results")
        store.store(config(), result)
        ops = [r["op"] for r in store.journal_entries()]
        assert ops == ["begin", "commit"]
        begin, commit = store.journal_entries()
        assert begin["pid"] == commit["pid"] == os.getpid()
        assert begin["key"] == commit["key"] == store.key(config())
        assert begin["tmp"] == commit["tmp"]
        assert store.pending_writes() == []  # committed: nothing in flight
        assert store.temp_files() == []

    def test_torn_journal_tail_is_skipped(self, tmp_path, result):
        store = ResultStore(tmp_path / "results")
        store.store(config(), result)
        with open(store.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "beg')
        assert [r["op"] for r in store.journal_entries()] == ["begin", "commit"]

    def test_dead_writers_temp_collected_on_open(self, tmp_path):
        """The self-healing pass: a SIGKILLed writer's journaled temp is
        removed the next time anything opens the store."""
        store = ResultStore(tmp_path / "results", clean_on_open=False)
        tmp = plant_temp(store)
        plant_begin(store, tmp, dead_pid())
        reopened = ResultStore(store.root)  # clean_on_open=True (default)
        assert not tmp.exists()
        assert reopened.journal_path.read_text(encoding="utf-8") == ""

    def test_live_writers_temp_preserved(self, tmp_path):
        """A temp owned by a journaled *live* pid is a write in progress
        — never touched, and the journal keeps its evidence."""
        store = ResultStore(tmp_path / "results", clean_on_open=False)
        tmp = plant_temp(store, age=7200.0)  # old, but the writer lives
        plant_begin(store, tmp, os.getpid())
        ResultStore(store.root)
        assert tmp.exists()
        assert store.pending_writes()  # journal not truncated either

    def test_unjournaled_temp_aged_out(self, tmp_path):
        store = ResultStore(tmp_path / "results", clean_on_open=False)
        old = plant_temp(store, "old.tmp", age=7200.0)
        fresh = plant_temp(store, "fresh.tmp")
        ResultStore(store.root)  # default ttl: one hour
        assert not old.exists()
        assert fresh.exists()  # maybe someone is mid-write: keep it

    def test_clean_stale_returns_count_and_honors_ttl(self, tmp_path):
        store = ResultStore(tmp_path / "results", clean_on_open=False)
        plant_temp(store, "a.tmp", age=50.0)
        plant_temp(store, "b.tmp", age=50.0)
        assert store.clean_stale(ttl=3600.0) == 0
        assert store.clean_stale(ttl=10.0) == 2
        assert store.temp_files() == []

    def test_interrupted_write_leaves_old_entry_intact(
        self, tmp_path, result, monkeypatch
    ):
        """Crash-consistency: a failure after *begin* (mid temp write)
        never tears the existing entry, and the journal records the
        in-flight write."""
        store = ResultStore(tmp_path / "results")
        path = store.store(config(), result)
        before = path.read_text(encoding="utf-8")

        def dies(*args, **kwargs):
            raise RuntimeError("writer dies here")

        monkeypatch.setattr(json, "dump", dies)
        with pytest.raises(RuntimeError, match="writer dies"):
            store.store(config(), result)
        monkeypatch.undo()
        assert path.read_text(encoding="utf-8") == before
        assert store.load(config()) == result
        (pending,) = store.pending_writes()  # begin with no commit
        assert pending["pid"] == os.getpid()

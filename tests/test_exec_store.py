"""Tests for config canonicalization, content hashing, and the on-disk
result store (repro.exec.store)."""

import dataclasses
import json

import pytest

from repro.exec.store import CODE_VERSION, ResultStore, default_store_root
from repro.faults import FaultSet
from repro.router import UNPIPELINED
from repro.sim import SimulationConfig, Simulator
from repro.topology import Torus


def config(**kwargs):
    defaults = dict(
        topology="torus",
        radix=6,
        dims=2,
        rate=0.01,
        warmup_cycles=100,
        measure_cycles=400,
        seed=9,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestCanonicalForm:
    def test_round_trip(self):
        original = config(timing=UNPIPELINED, fault_percent=1, fault_seed=3)
        rebuilt = SimulationConfig.from_canonical(original.to_canonical())
        assert rebuilt == original

    def test_round_trip_with_explicit_faults(self):
        torus = Torus(6, 2)
        faults = FaultSet.of(torus, nodes=[(2, 2)], links=[((0, 0), 0, 1)])
        original = config(faults=faults)
        rebuilt = SimulationConfig.from_canonical(original.to_canonical())
        assert rebuilt.content_hash() == original.content_hash()

    def test_canonical_is_json_serializable(self):
        torus = Torus(6, 2)
        canonical = config(faults=FaultSet.of(torus, nodes=[(1, 1)])).to_canonical()
        json.dumps(canonical)  # must not raise

    def test_covers_every_field(self):
        """New config fields automatically enter the canonical form (and
        therefore the hash) — a stale cache hit is structurally
        impossible."""
        canonical = config().to_canonical()
        for spec in dataclasses.fields(SimulationConfig):
            assert spec.name in canonical


class TestContentHash:
    def test_deterministic_across_instances(self):
        assert config().content_hash() == config().content_hash()

    def test_every_field_change_invalidates(self):
        base = config()
        base_hash = base.content_hash()
        variants = dict(
            topology="mesh",
            radix=8,
            dims=3,
            rate=0.02,
            message_length=4,
            warmup_cycles=101,
            measure_cycles=401,
            seed=10,
            fault_percent=1,
            fault_seed=2,
            traffic="transpose",
            timing=UNPIPELINED,
            router_model="crossbar",
            share_idle_vcs=False,
            collect_latencies=True,
        )
        for name, value in variants.items():
            changed = dataclasses.replace(base, **{name: value})
            assert changed.content_hash() != base_hash, name

    def test_version_tag_invalidates(self):
        assert config().content_hash("sim-v1") != config().content_hash("sim-v2")

    def test_network_signature_ignores_load_fields(self):
        """Configs differing only in traffic/measurement fields may share
        a network; topology-affecting fields may not."""
        base = config()
        assert base.network_signature() == config(
            rate=0.05, seed=77, measure_cycles=900, traffic="hotspot"
        ).network_signature()
        assert base.network_signature() != config(fault_percent=1).network_signature()
        assert base.network_signature() != config(radix=8).network_signature()


class TestResultStore:
    @pytest.fixture()
    def store(self, tmp_path):
        return ResultStore(tmp_path / "results")

    @pytest.fixture(scope="class")
    def result(self):
        return Simulator(config()).run()

    def test_miss_then_hit(self, store, result):
        cfg = config()
        assert cfg not in store
        assert store.load(cfg) is None
        store.store(cfg, result)
        assert cfg in store
        assert store.load(cfg) == result

    def test_distinct_configs_distinct_entries(self, store, result):
        store.store(config(), result)
        store.store(config(rate=0.02), result)
        assert len(store) == 2
        assert config(rate=0.02) in store and config(rate=0.03) not in store

    def test_version_tag_scopes_entries(self, tmp_path, result):
        old = ResultStore(tmp_path, version=CODE_VERSION)
        new = ResultStore(tmp_path, version=CODE_VERSION + ".post")
        old.store(config(), result)
        assert config() in old
        assert config() not in new  # same directory, different code version

    def test_corrupt_entry_reads_as_miss(self, store, result):
        cfg = config()
        path = store.store(cfg, result)
        path.write_text("{ torn json", encoding="utf-8")
        assert store.load(cfg) is None

    def test_clear(self, store, result):
        store.store(config(), result)
        store.store(config(rate=0.02), result)
        assert store.clear() == 2
        assert len(store) == 0
        assert store.clear() == 0  # idempotent on an empty store

    def test_default_root_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "env-store"))
        assert default_store_root() == tmp_path / "env-store"
        assert ResultStore().root == tmp_path / "env-store"

"""Tests for the T3D-style table-based routing baseline."""

import pytest

from repro.analysis import assert_deadlock_free
from repro.core import TableRouting, TableRoutingError
from repro.faults import FaultSet, validate_fault_pattern
from repro.sim import SimulationConfig, SimNetwork, Simulator
from repro.topology import Direction, Mesh, Torus


@pytest.fixture()
def single_fault():
    t = Torus(8, 2)
    fs = FaultSet.of(t, nodes=[(4, 4)])
    scenario = validate_fault_pattern(t, fs)
    return t, scenario, TableRouting.for_scenario(t, scenario)


class TestTableConstruction:
    def test_direct_route_needs_no_via(self, single_fault):
        _t, _s, routing = single_fault
        assert routing.lookup_via((0, 0), (2, 0)) is None

    def test_blocked_route_gets_via(self, single_fault):
        _t, _s, routing = single_fault
        via = routing.lookup_via((2, 4), (6, 4))
        assert via is not None
        assert via not in ((2, 4), (6, 4))

    def test_via_legs_avoid_fault(self, single_fault):
        t, scenario, routing = single_fault
        path = routing.route_path((2, 4), (6, 4))
        assert path[-1] == (6, 4)
        assert (4, 4) not in path

    def test_coverage_full_for_single_fault(self, single_fault):
        _t, _s, routing = single_fault
        assert routing.table_coverage() == 1.0

    def test_lookup_is_cached(self, single_fault):
        _t, _s, routing = single_fault
        first = routing.lookup_via((2, 4), (6, 4))
        assert routing.lookup_via((2, 4), (6, 4)) == first

    def test_all_pairs_delivery(self, single_fault):
        t, scenario, routing = single_fault
        healthy = [c for c in t.nodes() if c != (4, 4)]
        for src in healthy[::3]:
            for dst in healthy[::3]:
                if src != dst:
                    assert routing.route_path(src, dst)[-1] == dst

    def test_message_to_faulty_node_rejected(self, single_fault):
        _t, _s, routing = single_fault
        with pytest.raises(ValueError):
            routing.initial_state((0, 0), (4, 4))


class TestTableLimits:
    def test_surrounded_destination_unreachable(self):
        """A pattern the rudimentary scheme cannot solve: destination
        reachable only through non-dimension-order turns."""
        m = Mesh(8, 2)
        # wall of link faults isolating the e-cube approaches to (0,0)
        fs = FaultSet.of(
            m,
            links=[
                ((0, 0), 0, Direction.POS),
                ((0, 0), 1, Direction.POS),
            ],
        )
        routing = TableRouting(m, fs)
        # every leg into (0,0) must end with -0 or -1 hop through the two
        # dead links: no intermediate helps
        with pytest.raises(TableRoutingError):
            routing.lookup_via((5, 5), (0, 0))

    def test_coverage_below_one_when_defeated(self):
        m = Mesh(6, 2)
        fs = FaultSet.of(
            m,
            links=[((0, 0), 0, Direction.POS), ((0, 0), 1, Direction.POS)],
        )
        routing = TableRouting(m, fs)
        assert routing.table_coverage() < 1.0


class TestTableClasses:
    def test_leg_classes_disjoint(self, single_fault):
        _t, _s, routing = single_fault
        state = routing.initial_state((2, 4), (6, 4))
        current = (2, 4)
        leg_classes = {0: set(), 1: set()}
        for _ in range(40):
            decision = routing.next_hop(state, current)
            if decision.consume:
                break
            leg_classes[state.leg].add(decision.vc_class)
            current = routing.commit_hop(state, current, decision)
        assert leg_classes[0] <= {0, 1}
        assert leg_classes[1] <= {2, 3}
        assert leg_classes[1]

    def test_sharing_disabled(self, single_fault):
        _t, _s, routing = single_fault
        assert routing.supports_sharing is False


class TestTableSimulation:
    def _config(self, **kwargs):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(4, 4)])
        defaults = dict(
            topology="torus", radix=8, dims=2, faults=fs,
            routing_algorithm="table", rate=0.01,
            warmup_cycles=300, measure_cycles=1500,
        )
        defaults.update(kwargs)
        return SimulationConfig(**defaults)

    def test_cdg_acyclic(self):
        net = SimNetwork(self._config())
        assert_deadlock_free(net, include_sharing=False)

    def test_runs_and_drains(self):
        sim = Simulator(self._config())
        result = sim.run()
        sim.drain()
        assert sim.in_flight == 0 and result.delivered > 0

    def test_crossbar_variant(self):
        sim = Simulator(self._config(router_model="crossbar"))
        result = sim.run()
        sim.drain()
        assert result.delivered > 0

    def test_ft_outperforms_table_under_faults(self):
        """The paper's implicit claim: purpose-built f-ring routing beats
        the rudimentary table scheme (whose detours are full double
        traversals and whose VCs cannot be shared)."""
        table = Simulator(self._config(rate=0.015)).run()
        ft = Simulator(
            self._config(routing_algorithm="ft", rate=0.015)
        ).run()
        assert ft.throughput_flits_per_cycle >= table.throughput_flits_per_cycle

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(routing_algorithm="chaos")

"""Tests for the channel-dependency-graph analysis (mechanized Lemma 1)."""

import pytest

from repro.analysis import (
    assert_deadlock_free,
    build_cdg,
    channel_walk,
    find_dependency_cycle,
    misroute_statistics,
)
from repro.faults import FaultSet
from repro.router import ChannelKind
from repro.sim import SimulationConfig, SimNetwork
from repro.topology import Torus


def build(**kwargs):
    defaults = dict(topology="torus", radix=6, dims=2)
    defaults.update(kwargs)
    return SimNetwork(SimulationConfig(**defaults))


class TestChannelWalk:
    def test_starts_with_injection_ends_with_consumption(self):
        net = build()
        walk = channel_walk(net, (0, 0), (3, 3))
        assert walk[0][0].kind is ChannelKind.INJECTION
        assert walk[-1][0].kind is ChannelKind.CONSUMPTION

    def test_internode_hops_match_route_path(self):
        net = build()
        walk = channel_walk(net, (0, 0), (3, 3))
        internode = [ch for ch, _cls in walk if ch.kind is ChannelKind.INTERNODE]
        path = net.routing.route_path((0, 0), (3, 3))
        assert len(internode) == len(path) - 1

    def test_pdr_walk_contains_interchip(self):
        net = build()
        walk = channel_walk(net, (0, 0), (3, 3))
        assert any(ch.kind is ChannelKind.INTERCHIP for ch, _ in walk)

    def test_crossbar_walk_has_no_interchip(self):
        net = build(router_model="crossbar")
        walk = channel_walk(net, (0, 0), (3, 3))
        assert not any(ch.kind is ChannelKind.INTERCHIP for ch, _ in walk)

    def test_misrouted_walk_stays_on_healthy_channels(self):
        t = Torus(6, 2)
        fs = FaultSet.of(t, nodes=[(3, 3)])
        net = build(faults=fs)
        walk = channel_walk(net, (1, 3), (5, 3))
        for ch, _classes in walk:
            assert ch.dst_node != (3, 3) and ch.src_node != (3, 3)


class TestAcyclicity:
    def test_fault_free_acyclic(self):
        assert assert_deadlock_free(build()) > 0

    def test_faulty_acyclic_both_modes(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(4, 4)])
        net = build(radix=8, faults=fs)
        assert_deadlock_free(net, include_sharing=False)
        assert_deadlock_free(net, include_sharing=True)

    def test_no_cycle_returned(self):
        assert find_dependency_cycle(build()) is None

    def test_restricted_pairs(self):
        net = build()
        graph = build_cdg(net, pairs=[((0, 0), (3, 3)), ((3, 3), (0, 0))])
        assert graph.number_of_nodes() > 0

    def test_broken_allocation_is_caught(self):
        """Sanity check that the analysis can actually detect a cycle: a
        torus e-cube WITHOUT the dateline class switch must be cyclic."""
        import networkx as nx

        net = build(fault_tolerant=False, routing_algorithm="ecube")  # plain e-cube, 2 VCs
        graph = build_cdg(net)

        # collapse the class dimension: pretend every hop used class 0,
        # which is exactly 'no dateline switch'
        collapsed = nx.DiGraph()
        for (ch_a, _ca), (ch_b, _cb) in graph.edges():
            collapsed.add_edge(ch_a, ch_b)
        assert not nx.is_directed_acyclic_graph(collapsed)


class TestMisrouteStatistics:
    def test_fault_free_no_detours(self):
        stats = misroute_statistics(build())
        assert stats["detoured_pairs"] == 0
        assert stats["avg_extra_hops"] == 0.0

    def test_faulty_has_detours(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(4, 4)])
        net = build(radix=8, faults=fs)
        stats = misroute_statistics(net)
        assert stats["detoured_pairs"] > 0
        assert stats["avg_extra_hops"] >= 2.0  # detours come in pairs of hops
        assert stats["pairs"] == 63 * 62

"""Unit and scenario tests for the fault-tolerant routing algorithm."""

import pytest

from repro.core import FaultTolerantRouting, MisroutePhase, RoutingError
from repro.faults import FaultSet, validate_fault_pattern
from repro.topology import Direction, Mesh, Torus


def ft(network, fault_set):
    scenario = validate_fault_pattern(network, fault_set, allow_blocking=True)
    return FaultTolerantRouting.for_scenario(network, scenario), scenario


def trace(router, src, dst):
    """Hop-by-hop trace: list of (node, decision) plus the final path."""
    state = router.initial_state(src, dst)
    current = src
    decisions = []
    for _ in range(500):
        decision = router.next_hop(state, current)
        if decision.consume:
            return decisions, state
        decisions.append((current, decision))
        current = router.commit_hop(state, current, decision)
    raise AssertionError("trace did not terminate")


class TestFaultFreeEqualsECube:
    def test_no_faults_minimal_paths(self):
        t = Torus(8, 2)
        router, _ = ft(t, FaultSet())
        for src, dst in [((0, 0), (5, 3)), ((7, 7), (0, 0)), ((2, 6), (2, 1))]:
            path = router.route_path(src, dst)
            assert len(path) - 1 == t.distance(src, dst)


class TestTwoSidedMisroute:
    """Messages blocked in a non-final dimension: two ring sides."""

    @pytest.fixture()
    def setup(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(3, 3), (4, 3), (3, 4), (4, 4)])
        router, scenario = ft(t, fs)
        return t, router, scenario

    def test_path_shape(self, setup):
        _t, router, _ = setup
        # (1,3)->(5,3): tie resolves POS, blocked at (2,3)
        path = router.route_path((1, 3), (5, 3))
        assert path == [(1, 3), (2, 3), (2, 2), (3, 2), (4, 2), (5, 2), (5, 3)]

    def test_avoids_faulty_nodes(self, setup):
        _t, router, scenario = setup
        path = router.route_path((1, 3), (5, 3))
        assert not any(n in scenario.faults.node_faults for n in path)

    def test_misroute_statistics_tracked(self, setup):
        _t, router, _ = setup
        decisions, state = trace(router, (1, 3), (5, 3))
        assert state.misroute_hops >= 1
        assert state.rings_visited == 1
        misrouting = [d for _n, d in decisions if d.misrouting]
        assert len(misrouting) == state.misroute_hops

    def test_orientation_prefers_destination(self, setup):
        _t, router, _ = setup
        # destination above the fault -> go up (POS in dim 1)
        path_up = router.route_path((1, 4), (5, 6))
        assert (2, 5) in path_up
        # destination below -> go down
        path_down = router.route_path((1, 3), (5, 1))
        assert (2, 2) in path_down

    def test_dim0_classes_follow_pair(self, setup):
        _t, router, _ = setup
        decisions, _state = trace(router, (1, 3), (5, 3))
        # no wraparound on this route: dim-0 hops and the misroute detour
        # use c0 (M0 pre-wrap); the trailing dim-1 correction hop is taken
        # as an M1 message on c2.
        for _node, decision in decisions:
            if decision.dim == 0 or decision.misrouting:
                assert decision.vc_class == 0
        assert decisions[-1][1].vc_class == 2  # final M1 hop

    def test_blocked_message_with_wrap_uses_c1(self, setup):
        t, router, _ = setup
        # message wraps in dim0 before hitting the fault: (6,3)->(2,3)
        # direction POS from 6: 6->7->0->..., wrap first, then blocked at
        # the ring's low column.  All post-wrap hops use c1.
        decisions, _ = trace(router, (5, 4), (1, 4))
        # travels NEG from 5 to 1: 5,4 blocked immediately at ring hi col 5
        classes = {d.vc_class for _n, d in decisions if d.dim == 0}
        assert classes <= {0, 1}

    def test_resume_direct_set_at_corner(self, setup):
        _t, router, _ = setup
        state = router.initial_state((1, 3), (5, 3))
        current = (1, 3)
        saw_resume = False
        for _ in range(30):
            decision = router.next_hop(state, current)
            if state.resume_direct:
                saw_resume = True
                assert state.misroute is None
            if decision.consume:
                break
            current = router.commit_hop(state, current, decision)
        assert saw_resume


class TestThreeSidedMisroute:
    """Messages blocked in the final dimension: three ring sides, one
    orientation."""

    @pytest.fixture()
    def setup(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(3, 3), (4, 3), (3, 4), (4, 4)])
        router, scenario = ft(t, fs)
        return t, router, scenario

    def test_path_shape(self, setup):
        _t, router, _ = setup
        path = router.route_path((3, 1), (3, 5))
        assert path == [
            (3, 1), (3, 2), (4, 2), (5, 2), (5, 3), (5, 4), (5, 5), (4, 5), (3, 5),
        ]

    def test_phases_in_order(self, setup):
        _t, router, _ = setup
        state = router.initial_state((3, 1), (3, 5))
        current = (3, 1)
        phases = []
        for _ in range(40):
            decision = router.next_hop(state, current)
            if state.misroute is not None:
                phases.append(state.misroute.phase)
            if decision.consume:
                break
            current = router.commit_hop(state, current, decision)
        squeezed = [p for i, p in enumerate(phases) if i == 0 or phases[i - 1] != p]
        assert squeezed == [MisroutePhase.OUT, MisroutePhase.ALONG, MisroutePhase.BACK]

    def test_out_phase_always_positive_dim0(self, setup):
        _t, router, _ = setup
        decisions, _ = trace(router, (4, 1), (4, 5))
        first_misroute = next(d for _n, d in decisions if d.misrouting)
        assert first_misroute.dim == 0 and first_misroute.direction is Direction.POS

    def test_down_travel_mirrors(self, setup):
        _t, router, _ = setup
        path = router.route_path((3, 5), (3, 2))
        # blocked at (3,5) traveling NEG; out to column 5, down, back
        assert (5, 5) in path and (5, 2) in path
        assert path[-1] == (3, 2)

    def test_m1_uses_c2_c3(self, setup):
        _t, router, _ = setup
        decisions, _ = trace(router, (3, 1), (3, 5))
        assert all(d.vc_class in (2, 3) for _n, d in decisions)

    def test_wrap_during_detour_switches_class(self, setup):
        t = Torus(8, 2)
        # fault near the dim-1 dateline so the ALONG phase crosses it
        fs = FaultSet.of(t, nodes=[(3, 7), (4, 7)])
        router, _ = ft(t, fs)
        # (3,5)->(3,1): tie resolves POS; blocked at (3,6); the ALONG
        # phase crosses the dim-1 dateline at column 5
        decisions, state = trace(router, (3, 5), (3, 1))
        classes = [d.vc_class for _n, d in decisions]
        assert 2 in classes and 3 in classes  # switched mid-detour
        assert state.wrapped


class TestLinkFaults:
    def test_dim0_link_fault_detour(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, links=[((2, 5), 0, Direction.POS)])
        router, _ = ft(t, fs)
        path = router.route_path((1, 5), (4, 5))
        assert len(path) - 1 == 5  # 3 minimal + 2 detour hops
        # detours around the faulty link via the six-node ring (row 6 here,
        # the tie-breaking orientation)
        assert (2, 6) in path and (3, 6) in path

    def test_dim1_link_fault_three_sided(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, links=[((5, 2), 1, Direction.POS)])
        router, _ = ft(t, fs)
        path = router.route_path((5, 1), (5, 4))
        assert path[0] == (5, 1) and path[-1] == (5, 4)
        assert (6, 2) in path and (6, 3) in path  # around via column 6

    def test_wraparound_link_fault(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, links=[((7, 4), 0, Direction.POS)])
        router, _ = ft(t, fs)
        path = router.route_path((6, 4), (1, 4))
        assert path[0] == (6, 4) and path[-1] == (1, 4)


class TestMeshRouting:
    def test_two_and_three_sided(self):
        m = Mesh(8, 2)
        fs = FaultSet.of(m, nodes=[(3, 3), (3, 4)])
        router, scenario = ft(m, fs)
        p1 = router.route_path((1, 3), (6, 3))
        p2 = router.route_path((3, 1), (3, 6))
        for p in (p1, p2):
            assert not any(n in scenario.faults.node_faults for n in p)

    def test_mesh_classes_bounded(self):
        m = Mesh(8, 2)
        fs = FaultSet.of(m, nodes=[(4, 4)])
        router, _ = ft(m, fs)
        decisions, _ = trace(router, (2, 4), (6, 4))
        assert all(d.vc_class in (0, 1) for _n, d in decisions)

    def test_all_pairs_delivery(self):
        m = Mesh(6, 2)
        fs = FaultSet.of(m, nodes=[(2, 2), (3, 2)])
        router, scenario = ft(m, fs)
        healthy = [c for c in m.nodes() if c not in scenario.faults.node_faults]
        for src in healthy:
            for dst in healthy:
                if src == dst:
                    continue
                path = router.route_path(src, dst)
                assert path[-1] == dst


class TestAllPairsTorus:
    def test_block_fault_all_pairs(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(3, 3), (4, 3), (3, 4), (4, 4)])
        router, scenario = ft(t, fs)
        healthy = [c for c in t.nodes() if c not in scenario.faults.node_faults]
        for src in healthy:
            for dst in healthy:
                if src == dst:
                    continue
                path = router.route_path(src, dst)
                assert path[0] == src and path[-1] == dst
                assert not any(n in scenario.faults.node_faults for n in path)

    def test_multiple_regions(self):
        t = Torus(10, 2)
        fs = FaultSet.of(t, nodes=[(1, 1)], links=[((6, 6), 1, Direction.POS)])
        router, scenario = ft(t, fs)
        healthy = [c for c in t.nodes() if c not in scenario.faults.node_faults]
        for src in healthy[::3]:
            for dst in healthy[::3]:
                if src == dst:
                    continue
                assert router.route_path(src, dst)[-1] == dst


class Test3DRouting:
    def test_cube_fault_all_types(self):
        t = Torus(6, 3)
        nodes = [(x, y, z) for x in (2, 3) for y in (2, 3) for z in (2, 3)]
        router, scenario = ft(t, FaultSet(frozenset(nodes)))
        # DIM0-blocked, DIM1-blocked and DIM2-blocked messages
        cases = [
            ((0, 2, 2), (5, 2, 2)),  # blocked in dim0
            ((2, 0, 3), (2, 5, 3)),  # blocked in dim1
            ((3, 3, 0), (3, 3, 5)),  # blocked in dim2 (three-sided)
        ]
        for src, dst in cases:
            path = router.route_path(src, dst)
            assert path[-1] == dst
            assert not any(n in scenario.faults.node_faults for n in path)

    def test_dim2_misroutes_in_dim0(self):
        t = Torus(6, 3)
        router, _ = ft(t, FaultSet(frozenset({(3, 3, 3)})))
        decisions, _ = trace(router, (3, 3, 1), (3, 3, 4))
        misroute_dims = {d.dim for _n, d in decisions if d.misrouting}
        assert misroute_dims == {0, 2}
        dim0_classes = {d.vc_class for _n, d in decisions if d.dim == 0}
        assert dim0_classes <= {2, 3}  # Table 1, row 3


class TestErrors:
    def test_message_to_faulty_node_rejected(self):
        t = Torus(8, 2)
        router, _ = ft(t, FaultSet(frozenset({(3, 3)})))
        with pytest.raises(ValueError):
            router.initial_state((0, 0), (3, 3))

    def test_commit_on_deliver_raises(self):
        t = Torus(8, 2)
        router, _ = ft(t, FaultSet())
        state = router.initial_state((0, 0), (1, 0))
        decision = router.next_hop(state, (1, 0) if False else (0, 0))
        from repro.core import Decision

        with pytest.raises(RoutingError):
            router.commit_hop(state, (0, 0), Decision.deliver())

    def test_idempotent_next_hop(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(3, 3), (4, 3), (3, 4), (4, 4)])
        router, _ = ft(t, fs)
        state = router.initial_state((2, 3), (5, 3))
        first = router.next_hop(state, (2, 3))
        second = router.next_hop(state, (2, 3))
        third = router.next_hop(state, (2, 3))
        assert first == second == third
        assert first.misrouting

"""Cross-engine parity: the active-set and vector cores must be
bit-for-bit result-identical to the legacy full-scan core.

The scalar cores share the stage implementations but schedule them
differently (work-lists + block sampling vs. full scans); the vector
core replaces the transfer stage's inner loop with batched array
evaluation over the struct-of-arrays state.  Everything observable —
every counter, every batch statistic, every latency sample — must match
exactly; any drift means bookkeeping skipped or reordered work.  See
docs/architecture.md ("Determinism and the engine-parity guarantee" and
"SoA state layout").
"""

import random

import pytest

from repro.sim import SimulationConfig, Simulator

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised in the numpy-free CI job
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="vector core needs numpy")

# every non-reference core, compared against "legacy" as the baseline
ALT_CORES = ["active", pytest.param("vector", marks=needs_numpy)]

# The fixed-seed configurations the integration suite measures the
# paper's claims on (tests/test_integration.py), plus the corner cases
# that stress each scheduler path: crossbars (interchip-free), meshes
# (2 VCs), 3D, saturation (deep work-lists), hotspot + collected
# latencies, protocol banks with replies, table routing, uneven batches.
GOLDEN_CONFIGS = {
    "int-f0": dict(topology="torus", radix=8, dims=2, rate=0.015,
                   warmup_cycles=400, measure_cycles=2000, seed=3, fault_percent=0),
    "int-f1": dict(topology="torus", radix=8, dims=2, rate=0.015,
                   warmup_cycles=400, measure_cycles=2000, seed=3, fault_percent=1),
    "int-f5": dict(topology="torus", radix=8, dims=2, rate=0.015,
                   warmup_cycles=400, measure_cycles=2000, seed=3, fault_percent=5),
    "crossbar": dict(topology="torus", radix=8, dims=2, rate=0.015,
                     warmup_cycles=300, measure_cycles=1200, seed=3,
                     fault_percent=1, router_model="crossbar"),
    "mesh-f5": dict(topology="mesh", radix=8, dims=2, rate=0.012,
                    warmup_cycles=300, measure_cycles=1200, seed=11, fault_percent=5),
    "saturated": dict(topology="torus", radix=8, dims=2, rate=0.05,
                      warmup_cycles=300, measure_cycles=900, seed=5),
    "hotspot-latencies": dict(topology="torus", radix=8, dims=2, rate=0.008,
                              traffic="hotspot", collect_latencies=True,
                              warmup_cycles=300, measure_cycles=1200, seed=9),
    "3d": dict(topology="torus", radix=4, dims=3, rate=0.01,
               warmup_cycles=200, measure_cycles=1000, seed=2),
    "reqrep": dict(topology="torus", radix=6, dims=2, rate=0.008, protocol_classes=2,
                   request_reply=True, warmup_cycles=300, measure_cycles=1000, seed=4),
    "table": dict(topology="torus", radix=8, dims=2, rate=0.01, routing_algorithm="table",
                  warmup_cycles=300, measure_cycles=1000, seed=6, fault_percent=1),
    "ecube": dict(topology="torus", radix=8, dims=2, rate=0.012, fault_tolerant=False, routing_algorithm="ecube",
                  warmup_cycles=200, measure_cycles=1000, seed=8),
    "fashion": dict(topology="torus", radix=8, dims=2, rate=0.01, routing_algorithm="fashion",
                    warmup_cycles=300, measure_cycles=1000, seed=6, fault_percent=1),
    # 5% faults skew healthy degrees, so these also pin the up*/down*
    # root selection (max healthy degree, then centrality, then id)
    "fashion-f5": dict(topology="torus", radix=8, dims=2, rate=0.01, routing_algorithm="fashion",
                       warmup_cycles=300, measure_cycles=1000, seed=12, fault_percent=5),
    "adaptive-mesh": dict(topology="mesh", radix=8, dims=2, rate=0.01, routing_algorithm="adaptive",
                          warmup_cycles=300, measure_cycles=1000, seed=7, fault_percent=1),
    "adaptive-f5": dict(topology="mesh", radix=8, dims=2, rate=0.01, routing_algorithm="adaptive",
                        warmup_cycles=300, measure_cycles=1000, seed=12, fault_percent=5),
    "avoid": dict(topology="torus", radix=8, dims=2, rate=0.012, routing_algorithm="avoid",
                  warmup_cycles=200, measure_cycles=1000, seed=9),
    "uneven-batches": dict(topology="torus", radix=8, dims=2, rate=0.015,
                           warmup_cycles=200, measure_cycles=1005, batches=10, seed=13),
    "sharing-all": dict(topology="torus", radix=8, dims=2, rate=0.012,
                        vc_sharing_mode="all", warmup_cycles=200, measure_cycles=1000,
                        seed=10, fault_percent=1),
}


def run_core(core, kwargs, *, drain=False, fault=None):
    config = SimulationConfig(**kwargs)
    sim = Simulator(config, core=core)
    if fault is not None:
        at_cycle, spec = fault

        def bomb(now, sim=sim):
            if now == at_cycle:
                sim.inject_runtime_fault(**spec)

        sim.cycle_hooks.append(bomb)
    result = sim.run()
    if drain:
        sim.drain()
    return sim, result


def assert_results_identical(a, b):
    da, db = a.to_dict(), b.to_dict()
    assert da.keys() == db.keys()
    diffs = {k: (da[k], db[k]) for k in da if da[k] != db[k]}
    assert not diffs, f"cores disagree on: {diffs}"


class TestGoldenParity:
    @pytest.mark.parametrize("core", ALT_CORES)
    @pytest.mark.parametrize("name", sorted(GOLDEN_CONFIGS))
    def test_cores_agree(self, name, core):
        _, legacy = run_core("legacy", GOLDEN_CONFIGS[name])
        _, other = run_core(core, GOLDEN_CONFIGS[name])
        assert_results_identical(legacy, other)

    @pytest.mark.parametrize("core", ALT_CORES)
    def test_drain_parity(self, core):
        kwargs = GOLDEN_CONFIGS["int-f1"]
        legacy_sim, legacy = run_core("legacy", kwargs, drain=True)
        other_sim, other = run_core(core, kwargs, drain=True)
        assert_results_identical(legacy, other)
        assert legacy_sim.in_flight == other_sim.in_flight == 0
        # identical quiescence time: the drained clocks must agree too
        assert legacy_sim.now == other_sim.now
        assert legacy_sim._msg_counter == other_sim._msg_counter

    def test_core_selection_surface(self, monkeypatch):
        # pin the ambient default: CI runs this suite under
        # REPRO_SIM_CORE=vector as well
        monkeypatch.delenv("REPRO_SIM_CORE", raising=False)
        config = SimulationConfig(topology="torus", radix=4, dims=2, rate=0.01)
        assert Simulator(config).core == "active"
        assert Simulator(config, core="legacy").core == "legacy"
        if HAVE_NUMPY:
            assert Simulator(config, core="vector").core == "vector"
        with pytest.raises(ValueError):
            Simulator(config, core="warp")

    @pytest.mark.parametrize(
        "core", ["legacy", pytest.param("vector", marks=needs_numpy)]
    )
    def test_env_var_selects_core(self, monkeypatch, core):
        config = SimulationConfig(topology="torus", radix=4, dims=2, rate=0.01)
        monkeypatch.setenv("REPRO_SIM_CORE", core)
        assert Simulator(config).core == core

    def test_vector_without_numpy_names_the_extra(self, monkeypatch):
        import builtins
        import sys

        config = SimulationConfig(topology="torus", radix=4, dims=2, rate=0.01)
        real_import = builtins.__import__

        def no_numpy(name, *args, **kwargs):
            if name == "numpy" or name.startswith("numpy."):
                raise ImportError("No module named 'numpy'")
            return real_import(name, *args, **kwargs)

        monkeypatch.delitem(sys.modules, "numpy", raising=False)
        monkeypatch.setattr(builtins, "__import__", no_numpy)
        with pytest.raises(ImportError, match=r"repro\[fast\]"):
            Simulator(config, core="vector")


class TestRuntimeFaultParity:
    """Mid-run reconfiguration exercises the hard parts of the active
    core: the sampler must rewind when the healthy population shrinks and
    the transfer work-list must resync after channels are unwired."""

    FAULT = (900, dict(nodes=[(5, 5)]))

    @pytest.mark.parametrize("core", ALT_CORES)
    def test_mid_run_fault_parity(self, core):
        kwargs = dict(topology="torus", radix=8, dims=2, rate=0.012,
                      warmup_cycles=300, measure_cycles=1200, seed=21)
        legacy_sim, legacy = run_core("legacy", kwargs, drain=True, fault=self.FAULT)
        other_sim, other = run_core(core, kwargs, drain=True, fault=self.FAULT)
        assert legacy.fault_events == other.fault_events == 1
        assert_results_identical(legacy, other)
        assert legacy_sim.now == other_sim.now

    @pytest.mark.parametrize("core", ALT_CORES)
    def test_fault_on_faulty_network_parity(self, core):
        from repro.topology import Direction

        kwargs = dict(topology="torus", radix=8, dims=2, rate=0.01, fault_percent=1,
                      warmup_cycles=300, measure_cycles=1200, seed=17)
        fault = (800, dict(links=[((1, 1), 0, Direction.POS)]))
        _, legacy = run_core("legacy", kwargs, drain=True, fault=fault)
        _, other = run_core(core, kwargs, drain=True, fault=fault)
        assert_results_identical(legacy, other)

    @pytest.mark.parametrize("core", ALT_CORES)
    def test_staged_reconfiguration_window_parity(self, core):
        # detection_latency > 0 stages the fault through a transition
        # window; the vector core must delegate those cycles to the
        # scalar stages and resume batching afterwards with no drift
        kwargs = dict(topology="torus", radix=8, dims=2, rate=0.012,
                      warmup_cycles=300, measure_cycles=1200, seed=21,
                      detection_latency=2)
        legacy_sim, legacy = run_core("legacy", kwargs, drain=True, fault=self.FAULT)
        other_sim, other = run_core(core, kwargs, drain=True, fault=self.FAULT)
        assert_results_identical(legacy, other)
        assert legacy_sim.now == other_sim.now


class TestRandomizedParity:
    """Property sweep: random configurations over topology, radix,
    dimensionality, faults, load, traffic, router organization and
    protocol banks — the cores must agree on every one of them."""

    @staticmethod
    def random_config(rng):
        topology = rng.choice(["torus", "torus", "mesh"])
        dims = rng.choice([2, 2, 2, 3])
        radix = rng.choice([4, 5] if dims == 3 else [5, 6, 8])
        kwargs = dict(
            topology=topology,
            radix=radix,
            dims=dims,
            rate=round(rng.uniform(0.004, 0.03), 4),
            warmup_cycles=rng.choice([100, 200]),
            measure_cycles=rng.choice([400, 600, 700]),
            seed=rng.randrange(1, 10_000),
            traffic=rng.choice(["uniform", "uniform", "transpose", "hotspot"]),
            router_model=rng.choice(["pdr", "pdr", "crossbar"]),
            batches=rng.choice([10, 20]),
            collect_latencies=rng.random() < 0.3,
        )
        # faults need an even torus radix >= 6 for room to build f-rings
        if topology == "torus" and dims == 2 and radix in (6, 8):
            kwargs["fault_percent"] = rng.choice([0, 1, 5])
        if rng.random() < 0.25:
            kwargs["protocol_classes"] = 2
            kwargs["request_reply"] = True
        return kwargs

    @pytest.mark.parametrize("case_seed", range(8))
    def test_random_configs_agree(self, case_seed):
        kwargs = self.random_config(random.Random(20_000 + case_seed))
        _, legacy = run_core("legacy", kwargs)
        _, active = run_core("active", kwargs)
        assert_results_identical(legacy, active)
        if HAVE_NUMPY:
            _, vector = run_core("vector", kwargs)
            assert_results_identical(legacy, vector)


class TestTracerNeutrality:
    """The observability contract: attaching a tracer never changes
    simulation results (it observes, draws no randomness, and mutates no
    state), and both cores emit the identical event stream."""

    TRACED_CONFIGS = ["int-f5", "mesh-f5", "saturated", "reqrep"]

    @staticmethod
    def run_traced(core, kwargs):
        from repro.obs import TraceConfig, Tracer

        config = SimulationConfig(**kwargs)
        sim = Simulator(config, core=core)
        tracer = Tracer(sim, TraceConfig(window=100))
        result = sim.run()
        return tracer, result

    @pytest.mark.parametrize("name", TRACED_CONFIGS)
    @pytest.mark.parametrize(
        "core", ["legacy", "active", pytest.param("vector", marks=needs_numpy)]
    )
    def test_traced_run_is_bit_identical_to_untraced(self, name, core):
        _, untraced = run_core(core, GOLDEN_CONFIGS[name])
        _, traced = self.run_traced(core, GOLDEN_CONFIGS[name])
        assert_results_identical(untraced, traced)

    @pytest.mark.parametrize("core", ALT_CORES)
    @pytest.mark.parametrize("name", TRACED_CONFIGS)
    def test_cores_emit_identical_event_streams(self, name, core):
        legacy_tracer, legacy = self.run_traced("legacy", GOLDEN_CONFIGS[name])
        other_tracer, other = self.run_traced(core, GOLDEN_CONFIGS[name])
        assert_results_identical(legacy, other)
        assert len(legacy_tracer.events) == len(other_tracer.events)
        assert legacy_tracer.events == other_tracer.events
        legacy_series = [s.to_dict() for s in legacy_tracer.series.samples]
        other_series = [s.to_dict() for s in other_tracer.series.samples]
        assert legacy_series == other_series


class TestBatchNormalization:
    """Regression for the uneven-batch throughput bias: 1005 cycles in 10
    batches gives the last batch 105 cycles; its throughput must be
    normalized by 105, not the nominal 100."""

    def test_uneven_final_batch_uses_observed_length(self):
        kwargs = GOLDEN_CONFIGS["uneven-batches"]
        sim, result = run_core("active", kwargs)
        assert result.batch_cycles == [100] * 9 + [105]
        stats = sim.stats
        for flits, cycles, normalized in zip(
            stats.batch_flits, result.batch_cycles, result.batch_flits
        ):
            assert normalized == flits / cycles

    def test_even_batches_match_nominal_division(self):
        kwargs = dict(GOLDEN_CONFIGS["uneven-batches"], measure_cycles=1000)
        sim, result = run_core("active", kwargs)
        assert result.batch_cycles == [100] * 10
        for flits, normalized in zip(sim.stats.batch_flits, result.batch_flits):
            assert normalized == flits / 100

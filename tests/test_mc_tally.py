"""Tests for the mergeable MC tallies and the crash-safe tally log."""

import json
import random

import pytest

from repro.mc import Classification, ShardTally, TallyLog, merge_tallies
from repro.mc.classify import DEGRADED, FATAL, ROUTABLE


def verdict(label, *, sacrificed=0, reason=""):
    return Classification(
        label=label, sacrificed=sacrificed, merges=0, regions=0, reason=reason
    )


def tally_from(indices_labels, *, start=0, cap=4):
    tally = ShardTally(cell_key="cell", start=start, reservoir_cap=cap)
    for index, label in indices_labels:
        tally.record(index, verdict(label))
    return tally


class TestRecord:
    def test_counts_and_survivors(self):
        tally = tally_from(
            [(0, ROUTABLE), (1, DEGRADED), (2, FATAL), (3, DEGRADED)]
        )
        assert tally.count == 4
        assert tally.class_count(ROUTABLE) == 1
        assert tally.class_count(DEGRADED) == 2
        assert tally.survivors == 3

    def test_reasons_and_sacrifices(self):
        tally = ShardTally(cell_key="cell", start=0)
        tally.record(0, verdict(FATAL, reason="fatal-ring"))
        tally.record(1, verdict(FATAL, reason="fatal-ring"))
        tally.record(2, verdict(DEGRADED, sacrificed=3))
        assert tally.reasons == {"fatal-ring": 2}
        assert tally.sacrificed == 3

    def test_reservoir_keeps_lowest_indices(self):
        tally = tally_from([(i, ROUTABLE) for i in (9, 2, 7, 4, 11, 0)], cap=3)
        assert tally.reservoirs[ROUTABLE] == (0, 2, 4)


class TestMergeAlgebra:
    def test_commutative(self):
        a = tally_from([(0, ROUTABLE), (1, FATAL)])
        b = tally_from([(2, DEGRADED)], start=2)
        assert a.merged_with(b).digest() == b.merged_with(a).digest()

    def test_associative(self):
        a = tally_from([(0, ROUTABLE)])
        b = tally_from([(1, DEGRADED)], start=1)
        c = tally_from([(2, FATAL)], start=2)
        left = a.merged_with(b).merged_with(c)
        right = a.merged_with(c.merged_with(b))
        assert left.digest() == right.digest()

    def test_any_shard_order_identical(self):
        """The property the parallel engine rests on: merging the same
        shards in any order yields bit-for-bit identical tallies."""
        rng = random.Random(5)
        labels = [rng.choice([ROUTABLE, DEGRADED, FATAL]) for _ in range(40)]
        shards = [
            tally_from(
                [(i, labels[i]) for i in range(s * 10, s * 10 + 10)],
                start=s * 10,
            )
            for s in range(4)
        ]
        reference = merge_tallies(shards).digest()
        for _ in range(5):
            shuffled = shards[:]
            rng.shuffle(shuffled)
            assert merge_tallies(shuffled).digest() == reference

    def test_mismatched_cells_rejected(self):
        a = tally_from([(0, ROUTABLE)])
        b = ShardTally(cell_key="other", start=0)
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_mismatched_caps_rejected(self):
        a = tally_from([(0, ROUTABLE)], cap=4)
        b = tally_from([(1, ROUTABLE)], cap=8)
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_merge_tallies_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_tallies([])


class TestSerialization:
    def test_roundtrip(self):
        tally = tally_from([(0, ROUTABLE), (1, FATAL), (5, DEGRADED)])
        again = ShardTally.from_payload(tally.to_payload())
        assert again.digest() == tally.digest()

    def test_payload_is_json_safe(self):
        payload = tally_from([(0, ROUTABLE)]).to_payload()
        assert json.loads(json.dumps(payload)) == payload


class TestTallyLog:
    def test_append_get_roundtrip(self, tmp_path):
        log = TallyLog(tmp_path / "t.jsonl")
        tally = tally_from([(0, ROUTABLE), (1, FATAL)])
        log.append("k1", tally)
        assert log.get("k1").digest() == tally.digest()
        assert log.get("missing") is None
        assert len(log) == 1

    def test_reload_serves_appended(self, tmp_path):
        path = tmp_path / "t.jsonl"
        TallyLog(path).append("k1", tally_from([(0, ROUTABLE)]))
        reloaded = TallyLog(path)
        assert reloaded.get("k1") is not None
        assert not reloaded.healed

    def test_append_is_idempotent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        log = TallyLog(path)
        log.append("k1", tally_from([(0, ROUTABLE)]))
        size = path.stat().st_size
        log.append("k1", tally_from([(9, FATAL)]))  # re-offer: ignored
        assert path.stat().st_size == size
        assert log.get("k1").class_count(ROUTABLE) == 1

    def test_torn_tail_healed_by_truncation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        log = TallyLog(path)
        log.append("k1", tally_from([(0, ROUTABLE)]))
        log.append("k2", tally_from([(1, FATAL)], start=1))
        # SIGKILL mid-write: the last line is torn
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 7])
        healed = TallyLog(path)
        assert healed.healed
        assert healed.get("k1") is not None
        assert healed.get("k2") is None
        # the file itself was truncated back to the healthy prefix, so
        # appending the lost shard again produces a clean log
        healed.append("k2", tally_from([(1, FATAL)], start=1))
        assert not TallyLog(path).healed

    def test_garbage_line_drops_suffix(self, tmp_path):
        path = tmp_path / "t.jsonl"
        log = TallyLog(path)
        log.append("k1", tally_from([(0, ROUTABLE)]))
        with open(path, "ab") as handle:
            handle.write(b"{not json}\n")
        log.append("k2", tally_from([(1, FATAL)], start=1))
        healed = TallyLog(path)
        # everything after the corrupt line is conservatively dropped
        assert healed.healed
        assert healed.get("k1") is not None
        assert healed.get("k2") is None

"""Tests for result JSON serialization."""

import json

from repro.sim import SimulationConfig, Simulator
from repro.sim.metrics import SimulationResult


def small_result():
    config = SimulationConfig(
        topology="torus", radix=6, dims=2, rate=0.01,
        warmup_cycles=100, measure_cycles=500,
    )
    return Simulator(config).run()


class TestSerialization:
    def test_to_dict_has_derived_metrics(self):
        result = small_result()
        data = result.to_dict()
        assert data["throughput_flits_per_cycle"] == result.throughput_flits_per_cycle
        assert data["bisection_utilization"] == result.bisection_utilization
        assert data["topology"] == "torus"

    def test_to_json_roundtrip(self):
        result = small_result()
        data = json.loads(result.to_json())
        assert data["delivered"] == result.delivered

    def test_sweep_to_json(self):
        result = small_result()
        payload = json.loads(SimulationResult.sweep_to_json([result, result]))
        assert len(payload) == 2
        assert payload[0]["radix"] == 6

    def test_json_is_sorted_and_stable(self):
        result = small_result()
        assert result.to_json() == result.to_json()

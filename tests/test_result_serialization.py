"""Tests for result JSON serialization."""

import json

from repro.sim import SimulationConfig, Simulator
from repro.sim.metrics import SimulationResult


def small_result():
    config = SimulationConfig(
        topology="torus", radix=6, dims=2, rate=0.01,
        warmup_cycles=100, measure_cycles=500,
    )
    return Simulator(config).run()


class TestSerialization:
    def test_to_dict_has_derived_metrics(self):
        result = small_result()
        data = result.to_dict()
        assert data["throughput_flits_per_cycle"] == result.throughput_flits_per_cycle
        assert data["bisection_utilization"] == result.bisection_utilization
        assert data["topology"] == "torus"

    def test_to_json_roundtrip(self):
        result = small_result()
        data = json.loads(result.to_json())
        assert data["delivered"] == result.delivered

    def test_sweep_to_json(self):
        result = small_result()
        payload = json.loads(SimulationResult.sweep_to_json([result, result]))
        assert len(payload) == 2
        assert payload[0]["radix"] == 6

    def test_json_is_sorted_and_stable(self):
        result = small_result()
        assert result.to_json() == result.to_json()


class TestPercentileFields:
    def latency_result(self):
        config = SimulationConfig(
            topology="torus", radix=6, dims=2, rate=0.01, collect_latencies=True,
            warmup_cycles=100, measure_cycles=600,
        )
        return Simulator(config).run()

    def test_percentiles_populated_when_collecting(self):
        result = self.latency_result()
        assert result.delivered > 0
        assert 0 < result.latency_p50 <= result.latency_p95 <= result.latency_p99
        assert result.latency_p50 <= result.avg_latency <= result.latency_p99

    def test_percentiles_zero_without_samples(self):
        result = small_result()  # collect_latencies off
        assert result.latency_p50 == result.latency_p95 == result.latency_p99 == 0.0

    def test_percentiles_roundtrip(self):
        result = self.latency_result()
        data = json.loads(result.to_json())
        assert data["latency_p50"] == result.latency_p50
        assert data["latency_p95"] == result.latency_p95
        assert data["latency_p99"] == result.latency_p99
        rebuilt = SimulationResult.from_dict(data)
        assert rebuilt.latency_p99 == result.latency_p99
        assert rebuilt.batch_cycles == result.batch_cycles

    def test_batch_cycles_roundtrip(self):
        result = small_result()
        rebuilt = SimulationResult.from_json(result.to_json())
        assert rebuilt.batch_cycles == result.batch_cycles
        assert sum(rebuilt.batch_cycles) == result.cycles

    def test_old_payload_without_new_fields_loads(self):
        data = small_result().to_dict()
        for key in ("latency_p50", "latency_p95", "latency_p99", "batch_cycles"):
            del data[key]
        rebuilt = SimulationResult.from_dict(data)
        assert rebuilt.latency_p50 == 0.0 and rebuilt.batch_cycles == []

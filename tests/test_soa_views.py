"""SoA store / object-layer consistency.

The struct-of-arrays refactor promises there is exactly ONE copy of the
dynamic state: the `VirtualChannel` / `PhysicalChannel` /
`MessageSource` objects are views over `SoAState` buffers, and
`numpy_views()` wraps the same buffers zero-copy for the vector core.
These tests pin that aliasing contract from both sides — a write through
either layer must be visible through the other without any sync step —
plus the id-assignment invariants the vector core's gathers rely on.
"""

import pytest

from repro.router.channels import (
    DEFAULT_BUFFER_DEPTH,
    ChannelKind,
    MessageSource,
    PhysicalChannel,
)
from repro.sim.soa import BIG, KIND_CONSUMPTION, KIND_INTERNODE, SoAState


class FakeMessage:
    def __init__(self, length):
        self.length = length


def make_channel(store=None, num_classes=2, kind=ChannelKind.INTERNODE):
    return PhysicalChannel(kind, num_classes, name="t", store=store)


class TestObjectLayerInvariants:
    """stdlib-only: the invariants hold with or without numpy."""

    def test_sentinel_slot(self):
        ch = make_channel()
        st = ch._st
        assert st.head_time[0] == BIG
        assert st.upstream[0] == 0
        # the mask-free gather the transfer stage does is safe on the
        # sentinel: head_time[upstream[0]] is BIG, never "ready"
        assert st.head_time[st.upstream[0]] == BIG

    def test_vid_assignment(self):
        st = SoAState()
        a = make_channel(st)
        b = make_channel(st)
        assert b.index == a.index + 1
        # 2 * num_classes slots per channel: real VCs then shadow slots
        assert st.vbase[b.index] - st.vbase[a.index] == 2 * 2
        for vc in a.vcs + b.vcs:
            assert st.chan_of[vc._vid] == vc.channel.index
            assert st.is_real[vc._vid] == 1
            assert st.is_real[vc._vid + st.num_classes] == 0

    def test_message_setter_maintains_free_mask(self):
        ch = make_channel()
        st = ch._st
        assert st.free_mask[ch.index] == 0b11
        ch.vcs[0].message = FakeMessage(5)
        assert st.free_mask[ch.index] == 0b10
        assert st.msg_len[ch.vcs[0]._vid] == 5
        ch.vcs[0].message = None
        assert st.free_mask[ch.index] == 0b11
        assert st.msg_len[ch.vcs[0]._vid] == 0

    def test_eligibility_ring_mirrors_head_time(self):
        vc = make_channel().vcs[0]
        st, vid = vc._st, vc._vid
        assert st.head_time[vid] == BIG
        vc.eligible.append(7)
        vc.eligible.append(9)
        assert st.head_time[vid] == 7
        assert vc.eligible.popleft() == 7
        assert st.head_time[vid] == 9
        vc.eligible.popleft()
        assert st.head_time[vid] == BIG

    def test_source_shadow_slot_binding(self):
        ch = make_channel()
        vc = ch.vcs[1]
        st, vid = ch._st, vc._vid
        src = MessageSource(3)
        src.sent = 1
        vc.upstream = src
        shadow = vid + st.num_classes
        assert st.upstream[vid] == shadow
        assert st.sent[shadow] == 1
        assert st.head_time[shadow] == -1  # flits remain: always ready
        src.pop_flit()
        src.pop_flit()
        assert st.head_time[shadow] == BIG  # exhausted
        vc.upstream = None
        assert src.sent == 3  # unbind folds the count back onto the source

    def test_busy_list_mirrored_into_slots(self):
        ch = make_channel()
        st = ch._st
        for vc in (ch.vcs[1], ch.vcs[0]):
            vc.message = FakeMessage(2)
            ch.busy_add(vc)
        base = ch.index * 2 * st.num_classes
        assert st.busy_count[ch.index] == 2
        # order-preserving: the vector core's round-robin walks this
        assert st.busy_slots[base] == ch.vcs[1]._vid
        assert st.busy_slots[base + 1] == ch.vcs[0]._vid
        ch.release(ch.vcs[1])
        assert st.busy_count[ch.index] == 1
        assert st.busy_slots[base] == ch.vcs[0]._vid
        assert [vc.vc_class for vc in ch.busy] == [0]

    def test_kind_codes_mirrored(self):
        st = SoAState()
        a = make_channel(st)
        b = make_channel(st, kind=ChannelKind.CONSUMPTION)
        assert st.kind_code[a.index] == KIND_INTERNODE
        assert st.kind_code[b.index] == KIND_CONSUMPTION


class TestNumpyViews:
    """Zero-copy aliasing between the stdlib buffers and numpy views."""

    @pytest.fixture(autouse=True)
    def np(self):
        return pytest.importorskip("numpy")

    def test_views_alias_object_writes(self):
        ch = make_channel()
        vc = ch.vcs[0]
        V = ch._st.numpy_views()
        vc.received = 4
        vc.sent = 1
        vc.eligible.append(11)
        assert V["received"][vc._vid] == 4
        assert V["sent"][vc._vid] == 1
        assert V["head_time"][vc._vid] == 11

    def test_object_reads_see_view_writes(self):
        ch = make_channel()
        vc = ch.vcs[0]
        V = ch._st.numpy_views()
        V["received"][vc._vid] = 6
        V["sent"][vc._vid] = 2
        assert vc.received == 6
        assert vc.buffered == 4

    def test_cache_reused_and_growth_fenced(self):
        st = SoAState()
        make_channel(st)
        V1 = st.numpy_views()
        assert st.numpy_views() is V1  # no structural change: same wrap
        # growing a buffer that numpy has wrapped cannot silently
        # reallocate under the view: Python refuses the resize.  The
        # vector core only wraps after network construction is complete,
        # so this fence is unreachable in a simulation — but it is the
        # reason stale views can never alias freed memory.
        with pytest.raises(BufferError):
            make_channel(st)

    def test_reset_vc_restores_numeric_zeros(self):
        ch = make_channel()
        vc = ch.vcs[0]
        st, vid = ch._st, vc._vid
        vc.message = FakeMessage(2)
        vc.received = 2
        vc.sent = 1
        vc.eligible.append(5)
        vc.waiting_route = True
        st.reset_vc(vid)
        V = st.numpy_views()
        assert vc.message is None
        assert V["received"][vid] == 0
        assert V["sent"][vid] == 0
        assert V["head_time"][vid] == BIG
        assert V["elig_count"][vid] == 0
        assert not vc.waiting_route
        assert st.free_mask[ch.index] == 0b11

"""Smoke tests for the routing-policy arena harness."""

import importlib

import pytest

from repro.experiments import ArenaResult, FigureResult, arena
from repro.experiments.settings import ExperimentScale

# the package re-exports the arena() function under the module's name,
# so resolve the module itself for monkeypatching
arena_module = importlib.import_module("repro.experiments.arena")

# A miniature scale so the tournament finishes in test time.  Radix 6 is
# the smallest even torus with room for f-rings.
TINY = ExperimentScale(
    name="quick",
    radix=6,
    warmup_cycles=100,
    measure_cycles=300,
    rate_grids={
        0: [0.008, 0.016],
        1: [0.006, 0.012],
        5: [0.005, 0.010],
    },
)


@pytest.fixture
def tiny_scale(monkeypatch):
    monkeypatch.setattr(arena_module, "get_scale", lambda name="": TINY)


def run_tiny(**kwargs):
    kwargs.setdefault("topologies", ("torus",))
    kwargs.setdefault("fault_percents", (0,))
    kwargs.setdefault("policies", ("ft", "ecube"))
    return arena("quick", **kwargs)


class TestArena:
    def test_table_renders(self, tiny_scale):
        result = run_tiny()
        assert isinstance(result, ArenaResult)
        assert isinstance(result, FigureResult)  # --json compatibility
        text = result.render()
        assert "static verification" in text
        assert "tournament (load sweeps" in text
        assert "ft" in text and "ecube" in text
        assert "rho_b %" in text

    def test_cells_and_sweeps_consistent(self, tiny_scale):
        result = run_tiny(fault_percents=(0, 1), policies=None)
        assert result.cells, "tournament produced no cells"
        for cell in result.cells:
            assert cell.swept == (cell.coverage == 1.0)
            assert (cell.label in result.sweeps) == cell.swept
            assert cell.cdg_vertices > 0
            if cell.swept:
                # one result per rate in the thinned grid
                expected = len(TINY.rate_grids[cell.fault_percent][::2])
                assert len(result.sweeps[cell.label]) == expected
        # plain e-cube joins the default roster only in fault-free rows
        assert result.cell("ecube", "torus", 0)
        with pytest.raises(KeyError):
            result.cell("ecube", "torus", 1)

    def test_rerun_is_bit_identical(self, tiny_scale):
        first = run_tiny().render()
        second = run_tiny().render()
        assert first == second

    def test_partial_coverage_cells_are_noted(self, tiny_scale):
        result = run_tiny(fault_percents=(0, 1), policies=None)
        skipped = [cell for cell in result.cells if not cell.swept]
        for cell in skipped:
            assert any(cell.label in note for note in result.notes)

    def test_cli_registration(self):
        from repro.experiments.cli import _COMMANDS, _DESCRIPTIONS, build_parser

        assert "arena" in _COMMANDS
        assert "arena" in _DESCRIPTIONS
        args = build_parser().parse_args(["arena", "--scale", "quick"])
        assert args.experiment == "arena"


class TestRuntimeFaultCells:
    def test_default_roster_replays_runtime_cells(self, tiny_scale):
        """With the default roster the arena also ranks policies under
        staged mid-run reconfiguration (the PR 7 follow-up)."""
        result = run_tiny(fault_percents=(0,), policies=None)
        assert [c.policy for c in result.runtime_cells] == list(
            arena_module.RUNTIME_FAULT_POLICIES
        )
        events, _start, _interval, latency = arena_module._RUNTIME_SHAPE["quick"]
        for cell in result.runtime_cells:
            assert cell.topology == "torus"
            assert cell.events == events
            assert cell.detection_latency == latency
            if cell.survived:
                assert 0 <= cell.applied_events <= cell.events
            else:
                assert cell.error
        text = result.render()
        assert "runtime-fault tournament" in text
        assert any("runtime-fault cells replayed" in note for note in result.notes)

    def test_explicit_roster_skips_runtime_cells(self, tiny_scale):
        """Explicit rosters (the CI smoke's cold/warm cache assertion)
        must never trigger the non-cacheable campaign replays."""
        result = run_tiny()
        assert result.runtime_cells == []
        assert "runtime-fault tournament" not in result.render()

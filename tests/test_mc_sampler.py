"""Tests for the index-addressed MC fault-pattern sampler.

The contract under test is the one the whole subsystem leans on:
pattern ``i`` of a cell is the same FaultSet whether it is drawn
serially, in a parallel shard, on a resumed run, or in a different
process entirely.
"""

import subprocess
import sys

import pytest

from repro.mc import PatternSampler, max_link_faults, max_node_faults, pattern_seed
from repro.topology import Torus

CELL = "torus4d2:n1:l1:p=-:ov0:cdg0"


def sampler(nodes=1, links=1, *, seed=7, radix=4):
    return PatternSampler(
        Torus(radix, 2), nodes, links, master_seed=seed, cell_key=CELL
    )


class TestPatternSeed:
    def test_deterministic(self):
        assert pattern_seed(7, CELL, 3) == pattern_seed(7, CELL, 3)

    def test_distinct_across_index_cell_and_seed(self):
        seeds = {
            pattern_seed(7, CELL, 0),
            pattern_seed(7, CELL, 1),
            pattern_seed(7, "other-cell", 0),
            pattern_seed(8, CELL, 0),
        }
        assert len(seeds) == 4

    def test_never_uses_python_hash(self):
        # sha256-derived: a known pin, stable across processes/machines
        assert pattern_seed(0, "k", 0) == pattern_seed(0, "k", 0)
        assert pattern_seed(0, "k", 0) < 2**64


class TestDraw:
    def test_counts_and_incidence(self):
        faults = sampler(2, 3, radix=8).draw(5)
        assert len(faults.node_faults) == 2
        assert len(faults.link_faults) == 3
        for link in faults.link_faults:
            assert link.u not in faults.node_faults
            assert link.v not in faults.node_faults

    def test_skip_ahead_is_stream_exact(self):
        # drawing index 5 directly equals drawing it after 0..4
        fresh = sampler().draw(5)
        walked = dict(sampler().batch(0, 6))[5]
        assert fresh == walked

    def test_any_order_same_patterns(self):
        forward = [sampler().draw(i) for i in range(8)]
        backward = [sampler().draw(i) for i in reversed(range(8))]
        assert forward == list(reversed(backward))

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            sampler().draw(-1)

    def test_k_zero_draws_empty(self):
        faults = sampler(0, 0).draw(0)
        assert not faults.node_faults and not faults.link_faults

    def test_k_at_documented_maximum(self):
        # the documented maxima must always be drawable: sample sizes
        # never exceed their candidate populations
        net = Torus(4, 2)
        n_max = max_node_faults(net)
        s = PatternSampler(net, n_max, 0, master_seed=7, cell_key=CELL)
        assert len(s.draw(0).node_faults) == n_max
        l_max = max_link_faults(net, 1)
        s = PatternSampler(net, 1, l_max, master_seed=7, cell_key=CELL)
        assert len(s.draw(0).link_faults) == l_max

    def test_beyond_maximum_rejected(self):
        net = Torus(4, 2)
        with pytest.raises(ValueError):
            PatternSampler(
                net, 1, max_link_faults(net, 1) + 1, master_seed=7, cell_key=CELL
            )
        with pytest.raises(ValueError):
            PatternSampler(
                net, max_node_faults(net) + 1, 0, master_seed=7, cell_key=CELL
            )


class TestMaxima:
    def test_max_node_faults_is_every_node(self):
        assert max_node_faults(Torus(4, 2)) == 16

    def test_max_link_faults_shrinks_with_node_faults(self):
        net = Torus(4, 2)
        assert max_link_faults(net) == net.num_links()
        assert max_link_faults(net, 1) == net.num_links() - 4
        assert max_link_faults(net, 10**6) == 0


class TestCrossProcess:
    def test_same_draws_in_a_fresh_interpreter(self):
        """The determinism claim that matters for distributed shards:
        a different OS process (fresh hash randomization, fresh
        interpreter) draws the identical patterns."""
        script = (
            "from repro.mc import PatternSampler\n"
            "from repro.topology import Torus\n"
            f"s = PatternSampler(Torus(4, 2), 1, 1, master_seed=7, cell_key={CELL!r})\n"
            "print([sorted(map(str, s.draw(i).node_faults)) +"
            " sorted(map(str, s.draw(i).link_faults)) for i in range(4)])\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        here = str(
            [
                sorted(map(str, sampler().draw(i).node_faults))
                + sorted(map(str, sampler().draw(i).link_faults))
                for i in range(4)
            ]
        )
        assert out == here

"""Tests for the virtual-channel sharing modes ('off'/'rank'/'all').

The 'all' mode is the paper's literal "all the simulated virtual channels
are used to route normal messages"; the 'rank' default restricts sharing
to the same dateline rank, which the CDG analysis proves deadlock-free.
"""

import pytest

from repro.analysis import find_dependency_cycle
from repro.router import sharing_set
from repro.sim import SimulationConfig, SimNetwork, Simulator


class TestSharingSetModes:
    def test_rank_mode_same_parity(self):
        assert sharing_set(0, 4, torus=True, mode="rank") == (0, 2)
        assert sharing_set(3, 4, torus=True, mode="rank") == (3, 1)

    def test_all_mode_every_class(self):
        assert sharing_set(0, 4, torus=True, mode="all") == (0, 1, 2, 3)
        assert sharing_set(2, 4, torus=True, mode="all") == (2, 0, 1, 3)

    def test_mesh_ignores_mode(self):
        assert sharing_set(0, 2, torus=False, mode="rank") == sharing_set(
            0, 2, torus=False, mode="all"
        )

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            sharing_set(0, 4, torus=True, mode="greedy")


class TestConfigPlumbing:
    def test_effective_sharing(self):
        assert SimulationConfig().effective_sharing == "rank"
        assert SimulationConfig(vc_sharing_mode="all").effective_sharing == "all"
        assert SimulationConfig(share_idle_vcs=False).effective_sharing == "off"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(vc_sharing_mode="greedy")


class TestCdgPredictsTheDifference:
    """The headline result of this ablation: the rank restriction is what
    makes the sharing provably safe on a torus."""

    def test_torus_all_mode_has_cycle(self):
        net = SimNetwork(SimulationConfig(topology="torus", radix=6, dims=2))
        assert find_dependency_cycle(net, include_sharing="all") is not None

    def test_torus_rank_mode_acyclic(self):
        net = SimNetwork(SimulationConfig(topology="torus", radix=6, dims=2))
        assert find_dependency_cycle(net, include_sharing="rank") is None

    def test_mesh_safe_either_way(self):
        net = SimNetwork(SimulationConfig(topology="mesh", radix=6, dims=2))
        assert find_dependency_cycle(net, include_sharing="all") is None
        assert find_dependency_cycle(net, include_sharing="rank") is None


class TestSimulationBehavior:
    def test_all_mode_runs_below_saturation(self):
        config = SimulationConfig(
            topology="torus", radix=8, dims=2, vc_sharing_mode="all",
            rate=0.01, warmup_cycles=300, measure_cycles=1200,
        )
        sim = Simulator(config)
        result = sim.run()
        sim.drain()
        assert result.delivered > 0

    def test_all_mode_beats_rank_at_saturation(self):
        results = {}
        for mode in ("rank", "all"):
            config = SimulationConfig(
                topology="torus", radix=8, dims=2, vc_sharing_mode=mode,
                rate=0.026, warmup_cycles=500, measure_cycles=2000,
            )
            results[mode] = Simulator(config).run()
        assert (
            results["all"].throughput_flits_per_cycle
            > results["rank"].throughput_flits_per_cycle
        )

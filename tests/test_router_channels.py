"""Unit tests for virtual/physical channel mechanics."""

from repro.router import ChannelKind, MessageSource, PhysicalChannel
from repro.router.channels import VirtualChannel


def make_channel(num_classes=4, depth=4):
    return PhysicalChannel(ChannelKind.INTERNODE, num_classes, buffer_depth=depth)


class TestVirtualChannel:
    def test_initial_state(self):
        vc = make_channel().vcs[0]
        assert vc.free and vc.buffered == 0
        assert not vc.has_eligible_flit(100)

    def test_space_respects_depth(self):
        channel = make_channel(depth=2)
        vc = channel.vcs[0]
        vc.received = 2
        assert not vc.has_space()
        vc.sent = 1
        assert vc.has_space()

    def test_eligibility_ordering(self):
        vc = make_channel().vcs[1]
        vc.eligible.extend([10, 12])
        assert not vc.has_eligible_flit(9)
        assert vc.has_eligible_flit(10)
        vc.pop_flit()
        assert vc.sent == 1
        assert not vc.has_eligible_flit(11)
        assert vc.has_eligible_flit(12)

    def test_reset_clears_everything(self):
        vc = make_channel().vcs[2]
        vc.received, vc.sent = 5, 3
        vc.eligible.extend([1, 2])
        vc.waiting_route = True
        vc.cached_resolution = object()
        vc.reset()
        assert vc.free and vc.buffered == 0 and not vc.eligible
        assert not vc.waiting_route and vc.cached_resolution is None


class TestMessageSource:
    def test_supplies_exactly_length_flits(self):
        source = MessageSource(3)
        assert source.has_eligible_flit(0)
        source.pop_flit()
        source.pop_flit()
        source.pop_flit()
        assert not source.has_eligible_flit(0)


class TestPhysicalChannel:
    def test_one_vc_per_class(self):
        channel = make_channel(num_classes=4)
        assert [vc.vc_class for vc in channel.vcs] == [0, 1, 2, 3]

    def test_free_vc_preference_order(self):
        channel = make_channel()
        assert channel.free_vc((2, 0)).vc_class == 2
        channel.vcs[2].message = object()
        assert channel.free_vc((2, 0)).vc_class == 0
        channel.vcs[0].message = object()
        assert channel.free_vc((2, 0)) is None

    def test_release_removes_from_busy(self):
        channel = make_channel()
        vc = channel.vcs[1]
        vc.message = object()
        channel.busy.append(vc)
        channel.release(vc)
        assert vc.free and vc not in channel.busy

    def test_release_idempotent(self):
        channel = make_channel()
        vc = channel.vcs[1]
        channel.release(vc)
        channel.release(vc)
        assert vc not in channel.busy

"""Tests for post-run instrumentation (utilization, hotspots, latency
distributions)."""

import pytest

from repro.analysis import (
    ChannelLoad,
    channel_utilizations,
    hotspot_report,
    latency_histogram,
    latency_summary,
    percentile,
    utilization_heatmap,
)
from repro.sim import SimulationConfig, Simulator


@pytest.fixture(scope="module")
def faulty_run():
    config = SimulationConfig(
        topology="torus", radix=8, dims=2, fault_percent=5,
        rate=0.012, warmup_cycles=300, measure_cycles=1500,
        collect_latencies=True,
    )
    sim = Simulator(config)
    sim.run()
    return sim


class TestChannelUtilization:
    def test_utilizations_bounded(self, faulty_run):
        utilization = channel_utilizations(faulty_run)
        assert utilization
        assert all(0.0 <= value <= 1.0 for value in utilization.values())

    def test_transfers_counted(self, faulty_run):
        assert sum(ch.transfers for ch in faulty_run.net.channels) > 0

    def test_hotspot_fring_hotter(self, faulty_run):
        """The paper's hotspot claim: f-ring channels carry more traffic
        than ordinary channels."""
        report = hotspot_report(faulty_run)
        assert report["f-ring"].count > 0
        assert report["f-ring"].mean_utilization > report["other"].mean_utilization

    def test_channel_load_of_empty(self):
        load = ChannelLoad.of([])
        assert load.count == 0 and load.mean_utilization == 0.0

    def test_warmup_traffic_excluded_from_utilization(self):
        """Regression: utilization must be computed over the measurement
        window, not the whole run — a run whose traffic all happened
        during warmup has zero measured utilization."""
        config = SimulationConfig(
            topology="torus", radix=6, dims=2, rate=0.0,
            warmup_cycles=300, measure_cycles=400,
        )
        sim = Simulator(config)

        def seed(now):
            if now == 5:
                sim.inject_message((0, 0), (3, 3))

        sim.cycle_hooks.append(seed)
        sim.run()
        assert sum(ch.transfers for ch in sim.net.channels) > 0
        utilization = channel_utilizations(sim)
        assert all(value == 0.0 for value in utilization.values())
        report = hotspot_report(sim)
        assert report["other"].mean_utilization == 0.0

    def test_manual_stepping_falls_back_to_whole_run(self):
        config = SimulationConfig(
            topology="torus", radix=6, dims=2, rate=0.0,
            warmup_cycles=0, measure_cycles=10,
        )
        sim = Simulator(config)
        sim.inject_message((0, 0), (3, 0))
        for _ in range(100):
            sim.step()
        assert sim.measure_start_cycle is None
        assert sum(channel_utilizations(sim).values()) > 0


class TestHeatmap:
    def test_renders_grid(self, faulty_run):
        heatmap = utilization_heatmap(faulty_run)
        lines = heatmap.splitlines()
        assert len(lines) == 8 + 2  # rows + axis + scale
        assert "scale" in lines[-1]

    def test_marks_faulty_nodes(self, faulty_run):
        if faulty_run.net.scenario.faults.node_faults:
            assert "#" in utilization_heatmap(faulty_run)

    def test_3d_rejected(self):
        config = SimulationConfig(topology="torus", radix=4, dims=3,
                                  warmup_cycles=0, measure_cycles=10)
        sim = Simulator(config)
        sim.run()
        with pytest.raises(ValueError):
            utilization_heatmap(sim)


class TestLatencyDistribution:
    def test_percentiles(self):
        samples = list(range(1, 101))
        assert percentile(samples, 50) == 50
        assert percentile(samples, 99) == 99
        assert percentile(samples, 100) == 100
        assert percentile(samples, 0) == 1

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_summary_fields(self, faulty_run):
        summary = latency_summary(faulty_run.latency_samples)
        assert summary["count"] == len(faulty_run.latency_samples) > 0
        assert summary["p50"] <= summary["p90"] <= summary["p99"] <= summary["max"]

    def test_summary_empty(self):
        assert latency_summary([]) == {"count": 0}

    def test_histogram_bins_sum(self):
        samples = [1.0, 2.0, 3.0, 10.0, 10.0]
        text = latency_histogram(samples, bins=3)
        assert text.count("\n") == 2
        total = sum(int(line.rsplit(" ", 1)[1]) for line in text.splitlines())
        assert total == len(samples)

    def test_histogram_empty(self):
        assert latency_histogram([]) == "(no samples)"

    def test_samples_only_collected_when_enabled(self):
        config = SimulationConfig(topology="torus", radix=6, dims=2,
                                  rate=0.01, warmup_cycles=100, measure_cycles=400)
        sim = Simulator(config)
        sim.run()
        assert sim.latency_samples == []

"""Smoke tests for the example scripts: importable, documented, and the
cheap ones runnable end to end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def load_example(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart",
            "board_failure",
            "secure_partition",
            "fault_ring_tour",
            "router_organizations",
            "request_reply",
            "rolling_failures",
            "hotspot_analysis",
            "overlapping_rings",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_importable_with_main_and_docstring(self, path):
        module = load_example(path)
        assert callable(getattr(module, "main", None)), f"{path.stem} has no main()"
        assert module.__doc__ and len(module.__doc__) > 80

    def test_fault_ring_tour_runs(self, capsys):
        # the cheapest example with no stochastic simulation: run it fully
        module = load_example(next(p for p in EXAMPLES if p.stem == "fault_ring_tour"))
        module.main()
        out = capsys.readouterr().out
        assert "fault ring" in out or "#" in out

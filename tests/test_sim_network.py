"""Unit tests for network construction and wiring."""

import pytest

from repro.faults import FaultSet
from repro.router import ChannelKind
from repro.sim import SimulationConfig, SimNetwork
from repro.topology import Torus


def build(**kwargs):
    defaults = dict(topology="torus", radix=8, dims=2)
    defaults.update(kwargs)
    return SimNetwork(SimulationConfig(**defaults))


class TestFaultFreeWiring:
    def test_channel_counts_pdr_torus(self):
        net = build()
        kinds = {}
        for channel in net.channels:
            kinds[channel.kind] = kinds.get(channel.kind, 0) + 1
        assert kinds[ChannelKind.INJECTION] == 64
        assert kinds[ChannelKind.CONSUMPTION] == 64
        assert kinds[ChannelKind.INTERNODE] == 4 * 64  # 2 dims x 2 dirs
        assert kinds[ChannelKind.INTERCHIP] == 2 * 64  # 0->1 and 1->0

    def test_channel_counts_crossbar(self):
        net = build(router_model="crossbar")
        assert all(ch.kind is not ChannelKind.INTERCHIP for ch in net.channels)
        assert len(net.modules) == 64

    def test_pdr_3d_interchip_count(self):
        net = build(radix=4, dims=3)
        interchip = [c for c in net.channels if c.kind is ChannelKind.INTERCHIP]
        assert len(interchip) == 6 * 64  # each of 3 chips drives +1 and +2

    def test_baseline_pdr_chain_only(self):
        net = build(fault_tolerant=False, routing_algorithm="ecube")
        interchip = [c for c in net.channels if c.kind is ChannelKind.INTERCHIP]
        assert len(interchip) == 1 * 64  # only 0 -> 1

    def test_vc_counts(self):
        assert build().num_classes == 4
        assert build(topology="mesh").num_classes == 2
        assert build(fault_tolerant=False, routing_algorithm="ecube").num_classes == 2
        assert (
            build(topology="mesh", fault_tolerant=False, routing_algorithm="ecube").num_classes
            == 1
        )
        assert build(num_vcs=6).num_classes == 6

    def test_bisection_bandwidth(self):
        assert build().bisection_bandwidth == 2 * 2 * 8
        assert build(topology="mesh").bisection_bandwidth == 2 * 8


class TestFaultyWiring:
    def _faulty_net(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(4, 4)])
        return build(faults=fs)

    def test_faulty_node_has_no_router(self):
        net = self._faulty_net()
        assert (4, 4) not in net.nodes
        assert len(net.nodes) == 63

    def test_no_channels_touch_faulty_node(self):
        net = self._faulty_net()
        for channel in net.channels:
            assert channel.src_node != (4, 4)
            assert channel.dst_node != (4, 4)

    def test_ring_channels_flagged(self):
        net = self._faulty_net()
        ring_channels = [c for c in net.channels if c.on_ring]
        # 12 perimeter links (8-node ring), 2 unidirectional channels each
        assert len(ring_channels) == 16
        assert all(c.kind is ChannelKind.INTERNODE for c in ring_channels)

    def test_ring_nodes_flagged(self):
        net = self._faulty_net()
        assert net.nodes[(3, 3)].on_ring
        assert not net.nodes[(0, 0)].on_ring

    def test_faulty_link_removes_both_channels(self):
        t = Torus(8, 2)
        from repro.topology import Direction

        fs = FaultSet.of(t, links=[((2, 2), 0, Direction.POS)])
        net = build(faults=fs)
        for channel in net.channels:
            if channel.kind is ChannelKind.INTERNODE and channel.dim == 0:
                assert {channel.src_node, channel.dst_node} != {(2, 2), (3, 2)}

    def test_bisection_bandwidth_reduced_by_cut_faults(self):
        t = Torus(8, 2)
        from repro.topology import Direction

        fs = FaultSet.of(t, links=[((3, 5), 0, Direction.POS)])  # on the cut
        net = build(faults=fs)
        assert net.bisection_bandwidth == 2 * 2 * 8 - 2

    def test_ecube_with_faults_rejected(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(4, 4)])
        with pytest.raises(ValueError):
            build(faults=fs, fault_tolerant=False, routing_algorithm="ecube")


class TestConfigValidation:
    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            SimulationConfig(topology="ring")

    def test_unknown_router(self):
        with pytest.raises(ValueError):
            SimulationConfig(router_model="clos")

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            SimulationConfig(rate=1.5)

    def test_tiny_message_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(message_length=1)

    def test_describe_mentions_faults(self):
        net = build(fault_percent=5)
        text = net.describe()
        assert "torus" in text and "faults" in text

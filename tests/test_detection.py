"""Tests for distributed fault detection and staged reconfiguration:
the per-node knowledge schedule (:class:`repro.faults.DetectionProcess`),
the transition window lifecycle, stale-knowledge routing losses, and the
exactly-once loss accounting across back-to-back events.
"""

import pytest

from repro.faults import DetectionProcess, FaultSet
from repro.reliability import ReliabilityConfig, ReliableTransport
from repro.sim import SimulationConfig, Simulator
from repro.topology import Torus


def running_sim(rate=0.015, cycles=400, seed=5, **kwargs):
    config = SimulationConfig(
        topology="torus", radix=8, dims=2, rate=rate,
        warmup_cycles=0, measure_cycles=10, seed=seed, **kwargs,
    )
    sim = Simulator(config)
    for _ in range(cycles):
        sim.step()
    return sim


class TestDetectionProcess:
    def announce(self, latency=3, now=100):
        topology = Torus(8, 2)
        process = DetectionProcess(topology, latency)
        faults = FaultSet.of(topology, nodes=[(4, 4)])
        converge = process.announce(
            now,
            explicit_nodes={(4, 4)},
            explicit_links=frozenset(),
            condemned_rounds={},
            faults=faults,
        )
        return process, converge, now, latency

    def test_neighbors_learn_before_distant_nodes(self):
        process, _converge, now, latency = self.announce()
        assert not process.node_ready((4, 5), now)
        assert process.node_ready((4, 5), now + latency)
        # a node three hops out hears the report strictly later
        assert not process.node_ready((4, 1), now + latency)

    def test_knowledge_lag_counts_down_to_zero(self):
        process, converge, now, _latency = self.announce()
        lag = process.knowledge_lag((0, 0), now)
        assert lag > 0
        assert process.knowledge_lag((0, 0), now + lag) == 0
        assert all(process.node_ready(c, converge) for c in Torus(8, 2).nodes())

    def test_converge_includes_ring_formation_protocol(self):
        # two extra report rounds after the last node hears the news
        # (f-ring neighbors exchanging ring-formation messages)
        process, converge, now, latency = self.announce()
        last_heard = max(
            now + process.knowledge_lag(c, now) for c in Torus(8, 2).nodes()
        )
        assert converge == last_heard + 2 * latency

    def test_condemned_rounds_delay_the_wavefront(self):
        topology = Torus(8, 2)
        fast = DetectionProcess(topology, 3)
        slow = DetectionProcess(topology, 3)
        faults = FaultSet.of(topology, nodes=[(4, 4), (4, 5)])
        kwargs = dict(explicit_links=frozenset(), faults=faults)
        fast_converge = fast.announce(
            100, explicit_nodes={(4, 4), (4, 5)}, condemned_rounds={}, **kwargs
        )
        slow_converge = slow.announce(
            100, explicit_nodes={(4, 4)}, condemned_rounds={(4, 5): 1}, **kwargs
        )
        # a node condemned by round-1 blocking is announced one report
        # round later than an explicitly failed one
        assert slow_converge > fast_converge


class TestZeroLatencyParity:
    def test_instant_path_engages_no_window(self):
        sim = running_sim(detection_latency=0)
        report = sim.inject_runtime_fault(nodes=[(4, 4)])
        assert sim.reconfig is None
        assert report.detection_latency == 0
        assert report.completed_cycle == report.cycle == sim.now
        sim.drain()
        assert sim.detection_cycles == []
        assert sim.window_losses == 0

    def test_zero_latency_run_is_deterministic(self):
        def run():
            sim = running_sim(detection_latency=0)
            report = sim.inject_runtime_fault(nodes=[(4, 4)])
            for _ in range(300):
                sim.step()
            sim.drain()
            return sim._result().to_json(), tuple(report.lost_message_ids)

        assert run() == run()


class TestTransitionWindow:
    def test_explicit_node_dies_immediately(self):
        sim = running_sim(detection_latency=3)
        report = sim.inject_runtime_fault(nodes=[(4, 4)])
        assert sim.reconfig is not None
        assert report.detection_latency == 3
        assert report.completed_cycle is None
        assert (4, 4) not in sim.net.nodes
        assert (4, 4) not in sim.net.healthy
        for channel in sim.net.channels:
            assert channel.src_node != (4, 4) and channel.dst_node != (4, 4)

    def test_window_closes_at_convergence(self):
        sim = running_sim(detection_latency=3)
        report = sim.inject_runtime_fault(nodes=[(4, 4)])
        finalize = sim.reconfig.finalize_cycle
        assert finalize > sim.now
        while sim.reconfig is not None:
            sim.step()
        assert report.completed_cycle == finalize
        assert sim.detection_cycles == [finalize - report.cycle]
        # the installed scenario is the full degraded target
        assert (4, 4) in sim.net.scenario.faults.node_faults
        sim.drain()
        assert sim.in_flight == 0

    def test_condemned_nodes_stay_alive_until_close(self):
        sim = running_sim(detection_latency=4, rate=0.02)
        sim.inject_runtime_fault(nodes=[(4, 4)])
        for _ in range(3):
            sim.step()
        report = sim.inject_runtime_fault(nodes=[(5, 6)])
        assert report.degraded_nodes == ((4, 5), (4, 6), (5, 4), (5, 5))
        # mid-window: sacrificed nodes still route (stale knowledge);
        # explicitly failed ones are gone
        for coord in report.degraded_nodes:
            assert coord in sim.net.nodes
        assert (5, 6) not in sim.net.nodes
        while sim.reconfig is not None:
            sim.step()
        for coord in report.degraded_nodes:
            assert coord not in sim.net.nodes
        assert len(sim.net.scenario.ring_index.rings) == 1
        sim.drain()
        assert sim.in_flight == 0

    def test_knowledge_converges_monotonically(self):
        sim = running_sim(detection_latency=3)
        sim.inject_runtime_fault(nodes=[(4, 4)])
        window = sim.reconfig
        ready_counts = []
        while sim.reconfig is not None:
            ready_counts.append(
                sum(1 for c in sim.net.healthy if window.is_ready(c))
            )
            sim.step()
        assert ready_counts[0] < ready_counts[-1]
        assert ready_counts == sorted(ready_counts)

    def test_drain_waits_for_open_window(self):
        sim = running_sim(detection_latency=5)
        sim.inject_runtime_fault(nodes=[(4, 4)])
        assert sim.reconfig is not None
        sim.drain()
        assert sim.reconfig is None
        assert sim.in_flight == 0

    def test_survivability_fields_include_window_metrics(self):
        sim = running_sim(detection_latency=3, rate=0.02)
        sim.inject_runtime_fault(nodes=[(4, 4)])
        for _ in range(3):
            sim.step()
        sim.inject_runtime_fault(nodes=[(5, 6)])
        while sim.reconfig is not None:
            sim.step()
        sim.drain()
        result = sim._result()
        assert result.degraded_nodes == 4
        assert result.convexify_steps >= 1
        assert len(result.detection_cycles) == 1
        assert result.window_losses == sim.window_losses


class TestExactlyOnceAccounting:
    def test_back_to_back_events_never_double_count(self):
        # regression: a worm truncated by the first event of a window must
        # not be re-counted by the second event or by the window close
        sim = running_sim(detection_latency=4, rate=0.02)
        first = sim.inject_runtime_fault(nodes=[(4, 4)])
        for _ in range(3):
            sim.step()
        second = sim.inject_runtime_fault(nodes=[(5, 6)])
        while sim.reconfig is not None:
            sim.step()
        ids_first = first.lost_message_ids
        ids_second = second.lost_message_ids
        assert len(set(ids_first)) == len(ids_first)
        assert len(set(ids_second)) == len(ids_second)
        assert not set(ids_first) & set(ids_second)
        assert sim.killed_in_flight == len(ids_first) + len(ids_second)
        sim.drain()
        assert sim.in_flight == 0

    def test_window_losses_recovered_by_transport(self):
        sim = running_sim(detection_latency=4, rate=0.02, seed=7)
        transport = ReliableTransport(sim, ReliabilityConfig(timeout=300))
        sim.inject_runtime_fault(nodes=[(4, 4)])
        for _ in range(3):
            sim.step()
        sim.inject_runtime_fault(nodes=[(5, 6)])
        for _ in range(600):
            sim.step()
        sim.drain()
        stats = transport.stats
        assert stats.window_losses > 0
        # exactly-once delivery for every flow whose endpoints survived:
        # the only unrecovered messages are aborted dead-endpoint flows
        assert stats.lost <= stats.aborted
        assert stats.gave_up == 0
        assert stats.duplicates >= 0
        for track in transport.fault_events:
            assert track.recovered_cycle is not None

    def test_chaos_run_with_strict_invariants(self):
        # a previously-rejected overlapping pattern through the staged
        # detection path, with the CDG acyclicity check re-run after every
        # reconfiguration
        sim = running_sim(
            detection_latency=2, rate=0.02, strict_invariants=True
        )
        transport = ReliableTransport(sim, ReliabilityConfig(timeout=300))
        sim.inject_runtime_fault(nodes=[(4, 4)])
        for _ in range(40):
            sim.step()
        sim.inject_runtime_fault(nodes=[(5, 6)])
        for _ in range(400):
            sim.step()
        sim.drain()
        stats = transport.stats
        assert stats.lost <= stats.aborted
        assert sim.in_flight == 0

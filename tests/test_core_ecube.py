"""Unit tests for dimension-order routing."""

from repro.core import (
    ECubeRouting,
    ecube_hop,
    ecube_hop_count,
    ecube_path,
    next_ecube_dim,
    will_cross_dateline,
)
from repro.topology import Direction, Mesh, Torus


class TestNextDim:
    def test_lowest_differing_dim(self):
        assert next_ecube_dim((0, 0), (3, 3)) == 0
        assert next_ecube_dim((3, 0), (3, 3)) == 1
        assert next_ecube_dim((3, 3), (3, 3)) is None

    def test_3d(self):
        assert next_ecube_dim((1, 2, 3), (1, 2, 5)) == 2


class TestHop:
    def test_torus_minimal_direction(self):
        t = Torus(8, 2)
        assert ecube_hop(t, (0, 0), (2, 0)) == (0, Direction.POS)
        assert ecube_hop(t, (0, 0), (6, 0)) == (0, Direction.NEG)

    def test_arrived(self):
        assert ecube_hop(Torus(8, 2), (1, 1), (1, 1)) is None


class TestPath:
    def test_path_is_minimal_torus(self):
        t = Torus(8, 2)
        for src in [(0, 0), (3, 5)]:
            for dst in [(7, 7), (4, 1), (0, 6)]:
                if src == dst:
                    continue
                path = ecube_path(t, src, dst)
                assert len(path) - 1 == t.distance(src, dst)
                assert path[0] == src and path[-1] == dst

    def test_path_is_minimal_mesh(self):
        m = Mesh(8, 2)
        path = ecube_path(m, (0, 0), (7, 7))
        assert len(path) - 1 == 14

    def test_dimension_order_respected(self):
        t = Torus(8, 2)
        path = ecube_path(t, (0, 0), (3, 3))
        dims_changed = [
            next(d for d in range(2) if a[d] != b[d]) for a, b in zip(path, path[1:])
        ]
        assert dims_changed == sorted(dims_changed)

    def test_hop_count_equals_distance(self):
        t = Torus(8, 2)
        assert ecube_hop_count(t, (0, 0), (7, 7)) == 2


class TestDateline:
    def test_crossing(self):
        t = Torus(8, 2)
        assert will_cross_dateline(t, (6, 0), (1, 0), 0)
        assert not will_cross_dateline(t, (1, 0), (4, 0), 0)

    def test_no_remaining_hops(self):
        t = Torus(8, 2)
        assert not will_cross_dateline(t, (3, 0), (3, 5), 0)


class TestECubeRouting:
    def test_torus_class_switch_at_dateline(self):
        t = Torus(8, 2)
        router = ECubeRouting(t)
        state = router.initial_state((6, 0), (1, 0))
        current = (6, 0)
        classes = []
        while True:
            decision = router.next_hop(state, current)
            if decision.consume:
                break
            classes.append(decision.vc_class)
            current = router.commit_hop(state, current, decision)
        # 6 -> 7 on c0; wraparound hop 7 -> 0 and after on c1
        assert classes == [0, 1, 1]

    def test_mesh_always_class0(self):
        m = Mesh(8, 2)
        router = ECubeRouting(m)
        assert router.num_vc_classes == 1
        state = router.initial_state((0, 0), (3, 3))
        current = (0, 0)
        while True:
            decision = router.next_hop(state, current)
            if decision.consume:
                break
            assert decision.vc_class == 0
            current = router.commit_hop(state, current, decision)

    def test_route_path_matches_ecube_path(self):
        t = Torus(8, 2)
        router = ECubeRouting(t)
        assert router.route_path((0, 0), (5, 2)) == ecube_path(t, (0, 0), (5, 2))

    def test_wrapped_flag_resets_between_dims(self):
        t = Torus(8, 2)
        router = ECubeRouting(t)
        state = router.initial_state((6, 6), (1, 1))  # wraps in both dims
        current = (6, 6)
        dim1_classes = []
        while True:
            decision = router.next_hop(state, current)
            if decision.consume:
                break
            if decision.dim == 1:
                dim1_classes.append(decision.vc_class)
            current = router.commit_hop(state, current, decision)
        # first dim-1 hops pre-wrap must be class 0 again
        assert dim1_classes[0] == 0 and dim1_classes[-1] == 1

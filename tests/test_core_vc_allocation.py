"""Unit tests mechanically reproducing Tables 1 and 2 of the paper."""

import pytest

from repro.core import (
    class_pair,
    is_three_sided,
    misroute_dim_of,
    num_classes,
    plane_of,
    vc_class,
)


class TestTable1_3DTorus:
    """Table 1: planes and virtual channels in a 3D torus."""

    def test_dim0_messages(self):
        # c0 before a DIM0 wraparound, c1 after, in both plane dimensions
        for traveling in (0, 1):
            assert vc_class(3, 0, traveling, False, torus=True) == 0
            assert vc_class(3, 0, traveling, True, torus=True) == 1

    def test_dim1_messages(self):
        for traveling in (1, 2):
            assert vc_class(3, 1, traveling, False, torus=True) == 2
            assert vc_class(3, 1, traveling, True, torus=True) == 3

    def test_dim2_messages_in_dim2(self):
        assert vc_class(3, 2, 2, False, torus=True) == 0
        assert vc_class(3, 2, 2, True, torus=True) == 1

    def test_dim2_messages_in_dim0_misroute(self):
        # "c2 (c3) while traveling in DIM0 before (after) reserving a
        # wraparound link in DIM2"
        assert vc_class(3, 2, 0, False, torus=True) == 2
        assert vc_class(3, 2, 0, True, torus=True) == 3

    def test_planes(self):
        assert set(plane_of(3, 0)) == {0, 1}
        assert set(plane_of(3, 1)) == {1, 2}
        assert set(plane_of(3, 2)) == {2, 0}


class TestTable2_NDTorus:
    """Table 2: the general nD allocation."""

    def test_2d_even_case(self):
        # n = 2 (even): M0 -> c0/c1, M1 -> c2/c3 in both travel dims
        assert class_pair(2, 0, 0, torus=True) == (0, 1)
        assert class_pair(2, 0, 1, torus=True) == (0, 1)
        assert class_pair(2, 1, 1, torus=True) == (2, 3)
        assert class_pair(2, 1, 0, torus=True) == (2, 3)

    def test_alternating_pairs(self):
        for dims in (4, 5, 6):
            for msg_dim in range(dims - 1):
                expected = (0, 1) if msg_dim % 2 == 0 else (2, 3)
                assert class_pair(dims, msg_dim, msg_dim, torus=True) == expected

    def test_last_dim_even_n(self):
        # n even: M_{n-1} uses c2/c3 everywhere
        assert class_pair(4, 3, 3, torus=True) == (2, 3)
        assert class_pair(4, 3, 0, torus=True) == (2, 3)

    def test_last_dim_odd_n(self):
        # n odd: c0/c1 in DIM_{n-1}, c2/c3 in DIM_0
        assert class_pair(5, 4, 4, torus=True) == (0, 1)
        assert class_pair(5, 4, 0, torus=True) == (2, 3)

    def test_four_classes_suffice(self):
        for dims in range(2, 7):
            for msg_dim in range(dims):
                for traveling in (msg_dim, misroute_dim_of(dims, msg_dim)):
                    for wrapped in (False, True):
                        assert 0 <= vc_class(dims, msg_dim, traveling, wrapped, torus=True) < 4


class TestMeshCollapse:
    def test_two_classes_suffice(self):
        for dims in range(2, 6):
            for msg_dim in range(dims):
                for traveling in (msg_dim, misroute_dim_of(dims, msg_dim)):
                    assert 0 <= vc_class(dims, msg_dim, traveling, False, torus=False) < 2

    def test_2d_mesh_classes(self):
        assert vc_class(2, 0, 0, False, torus=False) == 0
        assert vc_class(2, 0, 1, False, torus=False) == 0  # misroute keeps class
        assert vc_class(2, 1, 1, False, torus=False) == 1
        assert vc_class(2, 1, 0, False, torus=False) == 1

    def test_wrap_flag_ignored_in_mesh(self):
        assert vc_class(2, 0, 0, True, torus=False) == vc_class(2, 0, 0, False, torus=False)


class TestStructuralHelpers:
    def test_num_classes(self):
        assert num_classes(torus=True) == 4
        assert num_classes(torus=False) == 2

    def test_misroute_dims(self):
        assert misroute_dim_of(2, 0) == 1
        assert misroute_dim_of(2, 1) == 0
        assert misroute_dim_of(3, 2) == 0
        assert misroute_dim_of(5, 3) == 4

    def test_three_sided_only_last_dim(self):
        assert not is_three_sided(3, 0)
        assert not is_three_sided(3, 1)
        assert is_three_sided(3, 2)
        assert is_three_sided(2, 1)

    def test_invalid_msg_dim(self):
        with pytest.raises(ValueError):
            class_pair(3, 3, 0, torus=True)

    def test_one_dim_has_no_misroute(self):
        with pytest.raises(ValueError):
            misroute_dim_of(1, 0)


class TestLemma1Disjointness:
    """Message types sharing a physical channel use disjoint class pairs
    (the heart of Lemma 1's first claim)."""

    @pytest.mark.parametrize("dims", [2, 3, 4, 5])
    def test_travelers_of_one_dim_use_disjoint_pairs(self, dims):
        # Which message types travel in dimension d?  M_d itself, plus
        # M_{d-1 mod n} misrouting (its misroute dim is d), plus (d == 0)
        # the last dimension's messages misrouting in DIM0.
        for d in range(dims):
            users = [(d, d)]  # (msg_dim, traveling_dim)
            prev = (d - 1) % dims
            if misroute_dim_of(dims, prev) == d and prev != d:
                users.append((prev, d))
            pairs = [set(class_pair(dims, m, t, torus=True)) for m, t in users]
            for i in range(len(pairs)):
                for j in range(i + 1, len(pairs)):
                    assert not (pairs[i] & pairs[j]), (
                        f"dims={dims} dim={d}: types {users[i]} and {users[j]} collide"
                    )

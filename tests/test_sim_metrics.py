"""Unit tests for metrics and confidence intervals."""

import math

from repro.sim import SimulationConfig, batch_means_ci
from repro.sim.metrics import SimulationResult, t_quantile_975


def make_result(**overrides):
    base = dict(
        topology="torus",
        radix=16,
        dims=2,
        router_model="pdr",
        timing_name="pipelined",
        fault_percent=0,
        rate=0.01,
        message_length=20,
        num_vcs=4,
        seed=1,
        cycles=1000,
        generated=600,
        injected=590,
        delivered=500,
        delivered_flits=10_000,
        bisection_messages=250,
        bisection_bandwidth=64,
        avg_latency=120.0,
        latency_ci=5.0,
        avg_queueing=3.0,
        misrouted_messages=10,
        avg_misroute_hops=2.5,
        final_source_queue=4,
        in_flight_at_end=7,
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestBatchMeans:
    def test_constant_batches_zero_width(self):
        mean, half = batch_means_ci([5.0] * 10)
        assert mean == 5.0 and half == 0.0

    def test_single_batch_infinite_width(self):
        mean, half = batch_means_ci([5.0])
        assert mean == 5.0 and math.isinf(half)

    def test_empty(self):
        assert batch_means_ci([]) == (0.0, 0.0)

    def test_width_shrinks_with_more_batches(self):
        wide = batch_means_ci([4.0, 6.0])[1]
        narrow = batch_means_ci([4.0, 6.0] * 5)[1]
        assert narrow < wide

    def test_t_quantiles(self):
        assert t_quantile_975(1) > t_quantile_975(9) > t_quantile_975(100) == 1.96
        assert math.isinf(t_quantile_975(0))


class TestSimulationResult:
    def test_throughput(self):
        result = make_result()
        assert result.throughput_flits_per_cycle == 10.0
        assert result.messages_per_cycle == 0.5

    def test_bisection_utilization_definition(self):
        result = make_result()
        # (250/1000 msgs/cycle * 20 flits) / 64 flits/cycle
        assert abs(result.bisection_utilization - 0.25 * 20 / 64) < 1e-12

    def test_zero_cycles_safe(self):
        result = make_result(cycles=0)
        assert result.throughput_flits_per_cycle == 0.0
        assert result.bisection_utilization == 0.0

    def test_applied_load(self):
        assert make_result().applied_load_flits_per_node == 0.2

    def test_scaled_latency(self):
        assert make_result().scaled_latency(1.3) == 156.0

    def test_saturated_heuristic(self):
        assert not make_result().saturated
        assert make_result(final_source_queue=10_000).saturated

    def test_row_renders(self):
        row = make_result().row()
        assert "rho_b" in row and "lat" in row

"""Tests for the misroute orientation policies (the algorithm's free
choice for two-sided detours)."""

import pytest

from repro.core import FaultTolerantRouting
from repro.faults import FaultSet, validate_fault_pattern
from repro.sim import SimulationConfig, Simulator
from repro.topology import Torus


@pytest.fixture()
def scenario():
    t = Torus(8, 2)
    fs = FaultSet.of(t, nodes=[(3, 3), (4, 3), (3, 4), (4, 4)])
    return t, validate_fault_pattern(t, fs)


class TestPolicies:
    def test_unknown_policy_rejected(self, scenario):
        t, scen = scenario
        with pytest.raises(ValueError):
            FaultTolerantRouting.for_scenario(t, scen, orientation_policy="zigzag")

    def test_all_policies_deliver_all_pairs(self, scenario):
        t, scen = scenario
        healthy = [c for c in t.nodes() if c not in scen.faults.node_faults]
        for policy in FaultTolerantRouting.ORIENTATION_POLICIES:
            router = FaultTolerantRouting.for_scenario(t, scen, orientation_policy=policy)
            for src in healthy[::5]:
                for dst in healthy[::5]:
                    if src != dst:
                        assert router.route_path(src, dst)[-1] == dst

    def test_destination_policy_heads_toward_destination(self, scenario):
        t, scen = scenario
        router = FaultTolerantRouting.for_scenario(t, scen)
        # destination above the block -> detour through the upper ring row
        path = router.route_path((1, 4), (5, 6))
        assert (2, 5) in path

    def test_shorter_side_policy_ignores_destination(self, scenario):
        t, scen = scenario
        router = FaultTolerantRouting.for_scenario(
            t, scen, orientation_policy="shorter-side"
        )
        # blocked at (2,4): row 4 is nearer the upper corner (5) than the
        # lower (2)?  distances: to hi (5-4)=1, to lo (4-2)=2 -> go up even
        # if the destination is below
        path = router.route_path((1, 4), (5, 2))
        assert (2, 5) in path

    def test_balanced_policy_uses_both_sides(self, scenario):
        t, scen = scenario
        router = FaultTolerantRouting.for_scenario(t, scen, orientation_policy="balanced")
        sides = set()
        for y_dst in range(8):
            dst = (5, y_dst)
            if dst in scen.faults.node_faults:
                continue
            for y_src in (3, 4):
                path = router.route_path((1, y_src), dst)
                if (2, 5) in path:
                    sides.add("up")
                if (2, 2) in path:
                    sides.add("down")
        assert sides == {"up", "down"}

    def test_balanced_policy_deterministic(self, scenario):
        t, scen = scenario
        a = FaultTolerantRouting.for_scenario(t, scen, orientation_policy="balanced")
        b = FaultTolerantRouting.for_scenario(t, scen, orientation_policy="balanced")
        assert a.route_path((1, 3), (5, 3)) == b.route_path((1, 3), (5, 3))


class TestPolicyInSimulation:
    @pytest.mark.parametrize("policy", ["destination", "shorter-side", "balanced"])
    def test_simulation_runs_and_drains(self, policy):
        config = SimulationConfig(
            topology="torus",
            radix=8,
            dims=2,
            fault_percent=5,
            orientation_policy=policy,
            rate=0.012,
            warmup_cycles=300,
            measure_cycles=1200,
        )
        sim = Simulator(config)
        result = sim.run()
        sim.drain()
        assert sim.in_flight == 0
        assert result.misrouted_messages > 0

    def test_invalid_policy_rejected_at_config(self):
        config = SimulationConfig(orientation_policy="zigzag")
        from repro.sim import SimNetwork

        with pytest.raises(ValueError):
            SimNetwork(config)

"""Tests for the experiment harnesses and CLI (at a tiny custom scale so
they run in seconds)."""

import pytest

import repro.experiments.figures as figures_module
from repro.experiments import (
    PAPER,
    QUICK,
    get_scale,
    lemma1_evidence,
    table1,
    table2,
)
from repro.experiments.cli import build_parser, main
from repro.experiments.settings import ExperimentScale

TINY = ExperimentScale(
    name="tiny",
    radix=6,
    warmup_cycles=200,
    measure_cycles=600,
    rate_grids={
        0: [0.01, 0.03],
        1: [0.01, 0.02],
        5: [0.008, 0.016],
    },
)


@pytest.fixture()
def tiny_scale(monkeypatch):
    monkeypatch.setattr(figures_module, "get_scale", lambda name="": TINY)
    return TINY


class TestScales:
    def test_named_scales(self):
        assert get_scale("quick") is QUICK
        assert get_scale("paper") is PAPER

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale() is PAPER

    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale() is QUICK

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_grids_cover_all_scenarios(self):
        for scale in (QUICK, PAPER):
            assert set(scale.rate_grids) == {0, 1, 5}


class TestFigureHarnesses:
    def test_fig8_structure(self, tiny_scale):
        result = figures_module.fig8()
        assert set(result.sweeps) == {"0% faults", "1% faults", "5% faults"}
        assert result.peak_utilization("0% faults") > 0
        text = result.render()
        assert "fig8" in text and "rho_b" in text and "peak rho_b" in text

    def test_fig9_structure(self, tiny_scale):
        result = figures_module.fig9()
        assert result.name == "fig9"
        assert "mesh" in result.title

    def test_fig10_structure(self, tiny_scale):
        result = figures_module.fig10()
        assert set(result.sweeps) == {"pipelined", "unpipelined"}
        assert any("1.3x" in note or "clock" in note for note in result.notes)

    def test_throughput_summary(self, tiny_scale):
        text = figures_module.throughput_summary()
        assert "torus" in text and "mesh" in text


class TestTableHarnesses:
    def test_table1_text(self):
        text = table1()
        assert "DIM0+, DIM0-" in text
        assert "DIM2-DIM0" in text
        assert "c2" in text

    def test_table2_text(self):
        text = table2(max_dims=4)
        assert "A(3,0)" in text
        assert "n=4" in text

    def test_lemma1_evidence(self):
        text = lemma1_evidence(radix=6)
        assert "acyclic" in text
        assert text.count("acyclic") >= 5


class TestExt3d:
    def test_ext3d_runs_small(self, monkeypatch):
        import repro.experiments.extension3d as ext_module

        monkeypatch.setattr(ext_module, "get_scale", lambda name="": TINY)
        text = ext_module.ext3d()
        assert "cube fault" in text and "peak rho_b" in text


class TestChaosHarness:
    def test_chaos_report_runs_quick(self):
        from repro.experiments import chaos_report
        from repro.experiments.context import RunContext

        text = chaos_report("quick", ctx=RunContext(scale_name="quick"))
        assert "Chaos campaign" in text
        assert "degraded mode:" in text
        assert "transition window" in text


class TestCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig8", "--scale", "quick"])
        assert args.experiment == "fig8" and args.scale == "quick"

    def test_every_subcommand_accepts_shared_flags(self):
        """The same --jobs/--no-cache/--seed/--out flags parse on every
        subcommand (defined once as shared argparse parents)."""
        parser = build_parser()
        from repro.experiments.cli import _COMMANDS

        for name in sorted(_COMMANDS) + ["all"]:
            args = parser.parse_args(
                [name, "--jobs", "2", "--no-cache", "--seed", "7", "--out", "r.txt"]
            )
            assert args.jobs == 2
            assert args.cache is False
            assert args.seed == 7
            assert args.out == "r.txt"

    def test_cache_flag_default_on(self):
        args = build_parser().parse_args(["tables"])
        assert args.cache is True and args.jobs == 1 and args.seed is None

    def test_main_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_main_writes_out_file(self, tmp_path, capsys, tiny_scale, monkeypatch):
        import repro.experiments.cli as cli_module

        monkeypatch.setitem(
            cli_module._COMMANDS, "fig8", lambda ctx: figures_module.fig8().render()
        )
        out_file = tmp_path / "report.txt"
        assert main(["fig8", "--out", str(out_file)]) == 0
        assert "fig8" in out_file.read_text()

    def test_main_reports_cache_accounting(self, tmp_path, capsys, tiny_scale, monkeypatch):
        """Two identical invocations: the second is served from the store."""
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        cold = main(["fig8", "--jobs", "1"])
        cold_err = capsys.readouterr().err
        warm = main(["fig8", "--jobs", "1"])
        warm_err = capsys.readouterr().err
        assert cold == warm == 0
        assert "cache: 0 hits" in cold_err
        assert ", 0 executed" in warm_err

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_resume_checkpoints_and_serves_on_rerun(
        self, tmp_path, capsys, tiny_scale, monkeypatch
    ):
        """--resume DIR: the first run writes a checkpoint under DIR;
        the identical re-run executes nothing."""
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        ckpt = tmp_path / "ckpt"
        cold = main(["fig8", "--jobs", "1", "--resume", str(ckpt)])
        cold_out = capsys.readouterr()
        warm = main(["fig8", "--jobs", "1", "--resume", str(ckpt)])
        warm_out = capsys.readouterr()
        assert cold == warm == 0
        assert "cache: 0 hits" in cold_out.err
        assert ", 0 executed" in warm_out.err
        assert cold_out.out == warm_out.out  # the visible report is identical
        assert list(ckpt.glob("*/manifest.json"))
        assert list(ckpt.glob("*/done.jsonl"))

    def test_resume_requires_the_store(self):
        with pytest.raises(SystemExit, match="--resume needs the result store"):
            main(["fig8", "--resume", "ckpt", "--no-cache"])

    def test_fsck_subcommand(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        assert main(["fsck"]) == 0
        out = capsys.readouterr().out
        assert "fsck" in out and "store is clean" in out

    def test_policy_flags_build_an_exec_policy(self):
        from repro.exec import ExecPolicy
        from repro.experiments.cli import _make_context

        ctx = _make_context(build_parser().parse_args(["fig8"]))
        assert ctx.policy is None  # defaults stay with the executor
        ctx = _make_context(
            build_parser().parse_args(
                ["fig8", "--task-timeout", "1.5", "--retries", "5"]
            )
        )
        assert ctx.policy == ExecPolicy(task_timeout=1.5, max_attempts=5)
        ctx = _make_context(
            build_parser().parse_args(["fig8", "--task-timeout", "2.0"])
        )
        assert ctx.policy.task_timeout == 2.0
        assert ctx.policy.max_attempts == ExecPolicy().max_attempts

    def test_infra_line_absent_on_healthy_runs(self, capsys):
        assert main(["tables"]) == 0
        assert "[repro] infra:" not in capsys.readouterr().err

    def test_infra_line_reports_retries(self, capsys, monkeypatch):
        """The infra summary appears iff something infra-level happened,
        and result accounting (the cache line CI greps) is untouched."""
        import repro.experiments.cli as cli_module
        from repro.exec import ExecutionStats

        def fake_runner(ctx):
            ctx.totals.infra_retries = 2
            ctx.totals.infra_crashes = 2
            ctx.totals.quarantined = 1
            return "report"

        monkeypatch.setitem(cli_module._COMMANDS, "fig8", fake_runner)
        assert main(["fig8", "--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "[repro] infra: 2 retries (2 crashes, 0 timeouts, 0 hung), " \
            "1 quarantined" in err
        assert "cache: 0 hits" in err


class TestInfraJson:
    def test_machine_readable_stats_line(self, capsys):
        """Every invocation emits the ExecutionStats JSON twin of the
        human cache/infra lines — same schema the service's /status
        serves."""
        import json as json_module

        assert main(["tables"]) == 0
        err = capsys.readouterr().err
        lines = [l for l in err.splitlines() if l.startswith("[repro] infra-json: ")]
        assert len(lines) == 1
        payload = json_module.loads(lines[0][len("[repro] infra-json: "):])
        for key in (
            "total", "cache_hits", "hit_ratio", "executed",
            "infra_retries", "infra_crashes", "infra_timeouts",
            "infra_hung", "quarantined",
        ):
            assert key in payload
        assert payload["infra_failures"] == (
            payload["infra_crashes"] + payload["infra_timeouts"] + payload["infra_hung"]
        )


class TestServiceForwarding:
    def test_service_subcommands_listed_in_help(self):
        parser = build_parser()
        help_text = parser.format_help()
        for name in ("serve", "submit", "status"):
            assert name in help_text

    def test_forwards_to_service_cli(self, capsys):
        """`repro-experiments status --root <empty>` forwards to
        repro.service and fails cleanly (no server.json there)."""
        import tempfile

        with tempfile.TemporaryDirectory() as empty:
            code = main(["status", "--root", empty, "--attempts", "1"])
        assert code == 2
        assert "repro.service:" in capsys.readouterr().err

"""Tests for the overlapping-f-rings extension (the paper's reference
[8]: "overlapping f-rings can be handled using more virtual channels").
"""

import pytest

from repro.analysis import assert_deadlock_free
from repro.core import FaultTolerantRouting
from repro.faults import (
    FaultSet,
    OverlapColoringError,
    RingGeometryError,
    assign_region_layers,
    ring_overlap_graph,
    shared_links_report,
    validate_fault_pattern,
)
from repro.sim import SimulationConfig, SimNetwork, Simulator
from repro.topology import Torus

#: two single-node faults whose rings share the link (4,4)-(5,4) but that
#: the blocking rule does not merge
OVERLAP_NODES = [(4, 3), (5, 5)]


@pytest.fixture()
def overlap_scenario():
    t = Torus(10, 2)
    fs = FaultSet.of(t, nodes=OVERLAP_NODES)
    return t, validate_fault_pattern(t, fs, allow_overlapping_rings=True)


class TestOverlapDetection:
    def test_rejected_by_default(self):
        t = Torus(10, 2)
        fs = FaultSet.of(t, nodes=OVERLAP_NODES)
        with pytest.raises(RingGeometryError):
            validate_fault_pattern(t, fs)

    def test_overlap_graph(self, overlap_scenario):
        _t, scenario = overlap_scenario
        graph = ring_overlap_graph(scenario.ring_index)
        assert graph == {0: {1}, 1: {0}}

    def test_shared_links_counted(self, overlap_scenario):
        _t, scenario = overlap_scenario
        assert shared_links_report(scenario.ring_index) == [(0, 1, 1)]

    def test_layers_alternate(self, overlap_scenario):
        _t, scenario = overlap_scenario
        assert sorted(scenario.region_layers.values()) == [0, 1]
        assert scenario.has_overlapping_rings

    def test_disjoint_pattern_all_layer_zero(self):
        t = Torus(10, 2)
        fs = FaultSet.of(t, nodes=[(2, 2), (7, 7)])
        scenario = validate_fault_pattern(t, fs, allow_overlapping_rings=True)
        assert set(scenario.region_layers.values()) == {0}
        assert not scenario.has_overlapping_rings

    def test_odd_cycle_rejected(self):
        """Three pairwise-overlapping rings cannot be 2-colored.  The
        block-fault geometry makes real 3-cliques contrived (the blocking
        rule usually merges the regions first), so the coloring is
        exercised directly on a synthetic overlap triangle."""

        class FakeRing:
            def __init__(self, region_index, links):
                self.region_index = region_index
                self._links = set(links)

            def perimeter_links(self):
                return self._links

        class FakeIndex:
            regions = [0, 1, 2]
            rings = [
                FakeRing(0, {"ab", "ca"}),
                FakeRing(1, {"ab", "bc"}),
                FakeRing(2, {"bc", "ca"}),
            ]

        with pytest.raises(OverlapColoringError):
            assign_region_layers(FakeIndex())

    def test_chain_of_three_is_colorable(self):
        """A linear chain A-B-C of overlaps 2-colors as 0,1,0."""
        t = Torus(12, 2)
        fs = FaultSet.of(t, nodes=[(4, 4), (5, 6), (6, 8)])
        scenario = validate_fault_pattern(t, fs, allow_overlapping_rings=True)
        graph = ring_overlap_graph(scenario.ring_index)
        middle = next(
            index
            for index, region in enumerate(scenario.ring_index.regions)
            if region.contains_node((5, 6))
        )
        ends = [i for i in range(3) if i != middle]
        # the middle region overlaps both ends; the ends do not overlap
        assert graph[middle] == set(ends)
        assert scenario.region_layers[ends[0]] == scenario.region_layers[ends[1]]
        assert scenario.region_layers[middle] != scenario.region_layers[ends[0]]


class TestLayeredRouting:
    def test_needs_double_classes(self, overlap_scenario):
        t, scenario = overlap_scenario
        routing = FaultTolerantRouting.for_scenario(t, scenario)
        assert routing.base_vc_classes == 4
        assert routing.num_vc_classes == 8

    def test_all_pairs_delivery(self, overlap_scenario):
        t, scenario = overlap_scenario
        routing = FaultTolerantRouting.for_scenario(t, scenario)
        healthy = [c for c in t.nodes() if c not in scenario.faults.node_faults]
        for src in healthy[::3]:
            for dst in healthy[::3]:
                if src != dst:
                    assert routing.route_path(src, dst)[-1] == dst

    def test_layer1_detours_use_upper_classes(self, overlap_scenario):
        t, scenario = overlap_scenario
        routing = FaultTolerantRouting.for_scenario(t, scenario)
        layer1_region = next(r for r, l in scenario.region_layers.items() if l == 1)
        region = scenario.ring_index.regions[layer1_region]
        # a message blocked by the layer-1 region in dim 0
        row = region.node_extent(1)[0]
        col = region.node_extent(0)[0]
        src = ((col - 2) % 10, row)
        dst = ((col + 3) % 10, row)
        state = routing.initial_state(src, dst)
        current = src
        misroute_classes = set()
        for _ in range(60):
            decision = routing.next_hop(state, current)
            if decision.consume:
                break
            if decision.misrouting:
                misroute_classes.add(decision.vc_class)
            current = routing.commit_hop(state, current, decision)
        assert misroute_classes and all(c >= 4 for c in misroute_classes)

    def test_layer0_detours_stay_in_base(self, overlap_scenario):
        t, scenario = overlap_scenario
        routing = FaultTolerantRouting.for_scenario(t, scenario)
        layer0_region = next(r for r, l in scenario.region_layers.items() if l == 0)
        region = scenario.ring_index.regions[layer0_region]
        row = region.node_extent(1)[0]
        col = region.node_extent(0)[0]
        src = ((col - 2) % 10, row)
        dst = ((col + 3) % 10, row)
        state = routing.initial_state(src, dst)
        current = src
        misroute_classes = set()
        for _ in range(60):
            decision = routing.next_hop(state, current)
            if decision.consume:
                break
            if decision.misrouting:
                misroute_classes.add(decision.vc_class)
            current = routing.commit_hop(state, current, decision)
        assert misroute_classes and all(c < 4 for c in misroute_classes)


class TestLayeredNetwork:
    def _config(self, **kwargs):
        t = Torus(10, 2)
        fs = FaultSet.of(t, nodes=OVERLAP_NODES)
        defaults = dict(
            topology="torus", radix=10, dims=2, faults=fs,
            allow_overlapping_rings=True,
        )
        defaults.update(kwargs)
        return SimulationConfig(**defaults)

    def test_network_gets_eight_classes(self):
        net = SimNetwork(self._config())
        assert net.num_classes == 8

    def test_cdg_acyclic_with_overlaps(self):
        """The mechanized counterpart of report [8]'s claim."""
        net = SimNetwork(self._config())
        assert_deadlock_free(net, include_sharing=False)
        assert_deadlock_free(net, include_sharing=True)

    def test_simulation_runs_and_drains(self):
        config = self._config(rate=0.012, warmup_cycles=300, measure_cycles=1500)
        sim = Simulator(config)
        result = sim.run()
        sim.drain()
        assert sim.in_flight == 0
        assert result.misrouted_messages > 0

    def test_degraded_without_flag(self):
        # without the extra-VC flag the overlap is no longer rejected: the
        # degraded-mode pipeline merges both rings into one enclosing
        # block and reports the sacrificed healthy nodes
        config = self._config(allow_overlapping_rings=False)
        net = SimNetwork(config)
        assert net.degradation is not None
        assert net.degradation.degraded_nodes == ((4, 4), (4, 5), (5, 3), (5, 4))
        assert net.degradation.convexify_steps == 1
        assert len(net.scenario.ring_index.rings) == 1
        assert not net.scenario.has_overlapping_rings
        assert net.num_classes == 4

    def test_composes_with_protocol_banks(self):
        config = self._config(
            protocol_classes=2, request_reply=True,
            rate=0.006, warmup_cycles=300, measure_cycles=1200,
        )
        net = SimNetwork(config)
        assert net.num_classes == 16  # 4 base x 2 layers x 2 protocols
        sim = Simulator(config, net)
        sim.run()
        sim.drain()
        assert sim.in_flight == 0

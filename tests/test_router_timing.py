"""Unit tests for router timing models."""

from repro.router import PIPELINED, UNPIPELINED, UNPIPELINED_SLOW_CLOCK


class TestTimingModels:
    def test_pipelined_paper_delays(self):
        assert PIPELINED.header_delay == 3
        assert PIPELINED.data_delay == 2
        assert PIPELINED.clock_scale == 1.0

    def test_unpipelined_single_cycle(self):
        assert UNPIPELINED.header_delay == 1
        assert UNPIPELINED.data_delay == 1

    def test_slow_clock_variant(self):
        assert UNPIPELINED_SLOW_CLOCK.clock_scale == 1.3
        assert UNPIPELINED_SLOW_CLOCK.header_delay == 1

    def test_delay_for(self):
        assert PIPELINED.delay_for(True) == 3
        assert PIPELINED.delay_for(False) == 2

    def test_immutable(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            PIPELINED.header_delay = 1  # type: ignore[misc]

"""Unit tests for the blocking rule, doubled intervals and region
extraction."""

import pytest

from repro.faults import (
    DoubledInterval,
    FaultSet,
    NetworkDisconnectedError,
    NonConvexFaultError,
    apply_block_fault_rule,
    extract_fault_regions,
    healthy_network_connected,
    link_fault_region,
    node_fault_region,
)
from repro.topology import BiLink, Direction, Mesh, Torus


class TestDoubledInterval:
    def test_contains_plain(self):
        iv = DoubledInterval(4, 3, 0)
        assert iv.contains(4) and iv.contains(6)
        assert not iv.contains(3) and not iv.contains(7)

    def test_contains_wrapping(self):
        iv = DoubledInterval(14, 4, 16)  # doubled ring of a radix-8 torus
        assert iv.contains(14) and iv.contains(15) and iv.contains(0) and iv.contains(1)
        assert not iv.contains(2)

    def test_end(self):
        assert DoubledInterval(4, 3, 0).end == 6
        assert DoubledInterval(14, 4, 16).end == 1

    def test_expanded(self):
        iv = DoubledInterval(4, 3, 16).expanded(2)
        assert iv.start == 2 and iv.length == 7

    def test_expanded_wraps(self):
        iv = DoubledInterval(0, 1, 16).expanded(2)
        assert iv.start == 14 and iv.contains(0) and iv.contains(2)

    def test_expansion_covering_ring_raises(self):
        with pytest.raises(NetworkDisconnectedError):
            DoubledInterval(0, 13, 16).expanded(2)

    def test_node_positions(self):
        assert DoubledInterval(4, 5, 0).node_positions() == [2, 3, 4]
        assert DoubledInterval(5, 1, 0).node_positions() == []  # a link
        assert DoubledInterval(14, 4, 16).node_positions() == [7, 0]


class TestBlockingRule:
    def test_isolated_faults_unchanged(self):
        t = Torus(8, 2)
        faults = frozenset({(1, 1), (5, 5)})
        assert apply_block_fault_rule(t, faults) == faults

    def test_l_shape_fills_to_square(self):
        t = Torus(8, 2)
        blocked = apply_block_fault_rule(t, frozenset({(2, 2), (3, 2), (2, 3)}))
        assert blocked == {(2, 2), (3, 2), (2, 3), (3, 3)}

    def test_diagonal_fills(self):
        t = Torus(8, 2)
        blocked = apply_block_fault_rule(t, frozenset({(2, 2), (3, 3)}))
        assert blocked == {(2, 2), (3, 2), (2, 3), (3, 3)}

    def test_gap_of_one_fills(self):
        t = Torus(8, 2)
        blocked = apply_block_fault_rule(t, frozenset({(2, 2), (4, 2)}))
        assert (3, 2) in blocked and len(blocked) == 3

    def test_empty(self):
        assert apply_block_fault_rule(Torus(8, 2), frozenset()) == frozenset()

    def test_mesh_corner_pair(self):
        m = Mesh(8, 2)
        blocked = apply_block_fault_rule(m, frozenset({(0, 0), (1, 1)}))
        assert blocked == {(0, 0), (1, 0), (0, 1), (1, 1)}


class TestNodeFaultRegion:
    def test_rectangle(self):
        t = Torus(8, 2)
        region = node_fault_region(t, [(3, 3), (4, 3), (3, 4), (4, 4)])
        assert region.node_extent(0) == [3, 4]
        assert region.node_extent(1) == [3, 4]
        assert not region.is_link_region()

    def test_single_node(self):
        t = Torus(8, 2)
        region = node_fault_region(t, [(5, 2)])
        assert region.contains_node((5, 2))
        assert not region.contains_node((5, 3))

    def test_wrapping_rectangle(self):
        t = Torus(8, 2)
        region = node_fault_region(t, [(7, 2), (0, 2)])
        assert region.node_extent(0) == [7, 0]
        assert region.contains_node((7, 2)) and region.contains_node((0, 2))
        assert not region.contains_node((1, 2))

    def test_non_rectangular_raises(self):
        t = Torus(8, 2)
        with pytest.raises(NonConvexFaultError):
            node_fault_region(t, [(3, 3), (4, 4)])

    def test_full_ring_raises(self):
        t = Torus(4, 2)
        with pytest.raises(NetworkDisconnectedError):
            node_fault_region(t, [(0, 1), (1, 1), (2, 1), (3, 1)])

    def test_faulty_nodes_roundtrip(self):
        t = Torus(8, 2)
        nodes = [(3, 3), (4, 3), (3, 4), (4, 4)]
        region = node_fault_region(t, nodes)
        assert sorted(region.faulty_nodes(t)) == sorted(nodes)

    def test_3d_block(self):
        t = Torus(6, 3)
        nodes = [(x, y, z) for x in (2, 3) for y in (2, 3) for z in (2, 3)]
        region = node_fault_region(t, nodes)
        assert len(region.faulty_nodes(t)) == 8


class TestLinkFaultRegion:
    def test_dim0_link(self):
        t = Torus(8, 2)
        region = link_fault_region(t, BiLink((2, 5), (3, 5), 0))
        assert region.is_link_region()
        assert region.node_extent(0) == []  # no node extent in the link dim
        assert region.node_extent(1) == [5]

    def test_wraparound_link(self):
        t = Torus(8, 2)
        region = link_fault_region(t, BiLink((0, 5), (7, 5), 0))
        assert region.is_link_region()
        assert region.intervals[0].start == 15  # doubled position of 7-0 link

    def test_contains_doubled(self):
        t = Torus(8, 2)
        region = link_fault_region(t, BiLink((2, 5), (3, 5), 0))
        assert region.contains_doubled((5, 10))
        assert not region.contains_doubled((4, 10))  # node (2,5) not in region


class TestExtractRegions:
    def test_mixture(self):
        t = Torus(8, 2)
        fs = FaultSet.of(
            t, nodes=[(1, 1)], links=[((5, 5), 0, Direction.POS)]
        )
        blocked, regions = extract_fault_regions(t, fs)
        assert len(regions) == 2
        assert sum(r.is_link_region() for r in regions) == 1

    def test_link_incident_on_faulty_node_absorbed(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(1, 1)], links=[((1, 1), 0, Direction.POS)])
        _blocked, regions = extract_fault_regions(t, fs)
        assert len(regions) == 1

    def test_blocking_expands(self):
        t = Torus(8, 2)
        fs = FaultSet(node_faults=frozenset({(2, 2), (3, 3)}))
        blocked, regions = extract_fault_regions(t, fs)
        assert len(blocked.node_faults) == 4
        assert len(regions) == 1

    def test_block_false_raises_on_nonconvex(self):
        t = Torus(8, 2)
        # a connected L-shaped component is not a filled box
        fs = FaultSet(node_faults=frozenset({(2, 2), (2, 3), (3, 3)}))
        with pytest.raises(NonConvexFaultError):
            extract_fault_regions(t, fs, block=False)


class TestConnectivity:
    def test_connected_with_small_fault(self):
        t = Torus(8, 2)
        fs = FaultSet.of(t, nodes=[(1, 1)])
        assert healthy_network_connected(t, fs)

    def test_mesh_cut_disconnects(self):
        m = Mesh(4, 2)
        fs = FaultSet(node_faults=frozenset({(1, 0), (1, 1), (1, 2), (1, 3)}))
        assert not healthy_network_connected(m, fs)

    def test_torus_survives_full_column_cut(self):
        t = Torus(4, 2)
        fs = FaultSet(node_faults=frozenset({(1, 0), (1, 1), (1, 2), (1, 3)}))
        assert healthy_network_connected(t, fs)

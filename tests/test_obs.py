"""Observability subsystem tests: the tracer's event taxonomy, the
flight recorder, the windowed time series, the exporters' schema
round-trips, and the Experiment/CLI trace plumbing.

The non-perturbation contract (traced runs are bit-for-bit identical to
untraced ones on both engine cores) lives in tests/test_engine_parity.py.
"""

import json

import pytest

from repro.analysis import deadlock_report, hotspot_report
from repro.api import Experiment
from repro.obs import (
    BLOCKED,
    DELIVER,
    EVENT_KINDS,
    EXEC_EVENT_KINDS,
    GENERATE,
    INJECT,
    MISROUTE_ENTER_RING,
    RETRANSMIT,
    TRANSFER,
    TRUNCATE,
    VC_ALLOC,
    ExecEvent,
    FlightRecorder,
    TraceConfig,
    TraceEvent,
    Tracer,
    events_to_jsonl,
    export_trace,
    read_exec_jsonl,
    read_jsonl,
    series_to_csv,
    to_chrome_trace,
    validate_chrome_trace,
    validate_event,
    validate_exec_event,
    write_exec_jsonl,
    write_jsonl,
)
from repro.reliability import ReliabilityConfig, ReliableTransport
from repro.sim import DeadlockError, SimulationConfig, Simulator


def faulty_config(**kwargs):
    defaults = dict(
        topology="torus", radix=8, dims=2, fault_percent=5,
        rate=0.012, warmup_cycles=200, measure_cycles=800, seed=7,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


@pytest.fixture(scope="module")
def traced_faulty_run():
    sim = Simulator(faulty_config())
    tracer = Tracer(sim, TraceConfig(window=100))
    result = sim.run()
    return sim, tracer, result


# ----------------------------------------------------------------------
# event emission
# ----------------------------------------------------------------------


class TestEventEmission:
    def test_lifecycle_kinds_present_on_faulty_run(self, traced_faulty_run):
        _, tracer, result = traced_faulty_run
        counts = tracer.counts()
        for kind in (GENERATE, INJECT, VC_ALLOC, TRANSFER, BLOCKED, DELIVER):
            assert counts[kind] > 0, f"no {kind} events recorded"
        assert counts[DELIVER] >= result.delivered

    def test_misroute_events_on_faulty_run(self, traced_faulty_run):
        _, tracer, result = traced_faulty_run
        assert result.misrouted_messages > 0
        assert tracer.counts()[MISROUTE_ENTER_RING] > 0

    def test_no_misroute_events_without_faults(self):
        sim = Simulator(faulty_config(fault_percent=0, measure_cycles=400))
        tracer = Tracer(sim, TraceConfig(window=0))
        sim.run()
        counts = tracer.counts()
        assert counts[MISROUTE_ENTER_RING] == 0
        assert counts[DELIVER] > 0

    def test_events_validate_against_schema(self, traced_faulty_run):
        _, tracer, _ = traced_faulty_run
        for event in tracer.events[:500]:
            assert validate_event(event.to_dict()) == []

    def test_deliver_follows_inject_per_message(self, traced_faulty_run):
        _, tracer, _ = traced_faulty_run
        injected_at = {}
        for event in tracer.events:
            if event.kind == INJECT:
                injected_at.setdefault(event.msg_id, event.cycle)
            elif event.kind == DELIVER and event.msg_id in injected_at:
                assert event.cycle > injected_at[event.msg_id]

    def test_event_log_cap_counts_drops(self):
        sim = Simulator(faulty_config(measure_cycles=400))
        tracer = Tracer(sim, TraceConfig(window=0, max_events=50))
        sim.run()
        assert len(tracer.events) == 50
        assert tracer.dropped_events > 0
        # the flight recorder keeps recording past the cap
        assert tracer.recorder.seen == 50 + tracer.dropped_events

    def test_double_attach_rejected(self):
        sim = Simulator(faulty_config())
        Tracer(sim)
        with pytest.raises(ValueError):
            Tracer(sim)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(window=-1)
        with pytest.raises(ValueError):
            TraceConfig(capacity=0)
        with pytest.raises(ValueError):
            TraceConfig(formats=("jsonl", "parquet"))


class TestTruncateAndRetransmit:
    def run_with_mid_run_fault(self, transport=False):
        sim = Simulator(SimulationConfig(
            topology="torus", radix=8, dims=2, rate=0.0,
            warmup_cycles=0, measure_cycles=10,
        ))
        if transport:
            ReliableTransport(sim, ReliabilityConfig(timeout=400))
        tracer = Tracer(sim, TraceConfig(window=0))
        message = sim.inject_message((0, 0), (5, 0))
        link = None
        for _ in range(100):
            sim.step()
            for channel in sim.net.channels:
                if channel.kind.value != "internode":
                    continue
                if any(vc.message is message for vc in channel.busy):
                    link = (channel.src_node, channel.dim, int(channel.direction))
                    break
            if link is not None:
                break
        assert link is not None
        report = sim.inject_runtime_fault(links=[link])
        sim.drain()
        return sim, tracer, message, report

    def test_truncate_event_on_runtime_fault_kill(self):
        _, tracer, message, report = self.run_with_mid_run_fault()
        assert message.msg_id in report.lost_message_ids
        truncates = [e for e in tracer.events if e.kind == TRUNCATE]
        assert any(e.msg_id == message.msg_id for e in truncates)

    def test_window_loss_report_carries_trace_tail(self):
        _, _, message, report = self.run_with_mid_run_fault()
        assert report.trace_tail, "lost-message report should carry history"
        assert all(e.msg_id == message.msg_id for e in report.trace_tail)

    def test_retransmit_event_with_transport(self):
        _, tracer, message, _ = self.run_with_mid_run_fault(transport=True)
        retransmits = [e for e in tracer.events if e.kind == RETRANSMIT]
        assert retransmits, "fault kill should trigger a traced retransmit"
        assert retransmits[0].attempt >= 1
        # the retransmitted copy gets a fresh generate/deliver lifecycle
        delivered = [e for e in tracer.events if e.kind == DELIVER]
        assert any(e.attempt >= 1 for e in delivered)


# ----------------------------------------------------------------------
# flight recorder + deadlock post-mortems
# ----------------------------------------------------------------------


class TestFlightRecorder:
    @staticmethod
    def event(cycle, msg_id=1, kind=TRANSFER):
        return TraceEvent(cycle, kind, msg_id, (0, 0), (1, 1))

    def test_bounded_and_ordered(self):
        recorder = FlightRecorder(capacity=4)
        for cycle in range(10):
            recorder.append(self.event(cycle))
        assert len(recorder) == 4
        assert recorder.seen == 10
        assert [e.cycle for e in recorder.tail()] == [6, 7, 8, 9]
        assert [e.cycle for e in recorder.tail(limit=2)] == [8, 9]

    def test_tail_for_filters_by_message(self):
        recorder = FlightRecorder(capacity=8)
        for cycle in range(8):
            recorder.append(self.event(cycle, msg_id=cycle % 2))
        tail = recorder.tail_for([0])
        assert [e.cycle for e in tail] == [0, 2, 4, 6]
        assert [e.cycle for e in recorder.tail_for([0], limit=1)] == [6]

    def stalled_sim(self, tracer=True):
        sim = Simulator(SimulationConfig(
            topology="torus", radix=8, dims=2, rate=0.0,
            warmup_cycles=0, measure_cycles=10, deadlock_threshold=50,
        ))
        if tracer:
            Tracer(sim, TraceConfig(window=0))
        message = sim.inject_message((0, 0), (4, 0))
        sim.step()
        with pytest.raises(DeadlockError) as excinfo:
            for _ in range(200):
                for channel in sim.net.channels:
                    for vc in channel.vcs:
                        vc.eligible.clear()
                        if vc.message is not None:
                            vc.received = max(vc.received, 1)
                sim.step()
        return message, excinfo.value

    def test_deadlock_error_carries_trace_tail(self):
        message, error = self.stalled_sim()
        assert error.trace_tail
        assert any(e.msg_id == message.msg_id for e in error.trace_tail)
        assert "last recorded events for stuck worms" in error.report

    def test_deadlock_report_renders_history(self):
        message, error = self.stalled_sim()
        text = deadlock_report(error)
        assert f"cycle {error.cycle}" in text
        assert "inject" in text or "vc_alloc" in text

    def test_deadlock_report_hints_when_untraced(self):
        _, error = self.stalled_sim(tracer=False)
        assert error.trace_tail == []
        assert "attach a Tracer" in deadlock_report(error)


# ----------------------------------------------------------------------
# time series
# ----------------------------------------------------------------------


class TestTimeSeries:
    def test_samples_at_window_boundaries(self, traced_faulty_run):
        _, tracer, _ = traced_faulty_run
        series = tracer.series
        assert series.samples
        assert all(s.cycle % series.window == 0 for s in series.samples)
        cycles = [s.cycle for s in series.samples]
        assert cycles == sorted(cycles)

    def test_utilization_bounds_and_channel_split(self, traced_faulty_run):
        sim, tracer, _ = traced_faulty_run
        for s in tracer.series.samples:
            assert 0.0 <= s.ring_utilization <= 1.0
            assert 0.0 <= s.other_utilization <= 1.0
            assert s.ring_channels > 0  # 5% faults always build rings
            assert len(s.vc_occupancy) == sim.net.base_classes

    def test_dynamic_gap_matches_static_hotspot(self, traced_faulty_run):
        """The time series must reproduce hotspot_report's story: f-ring
        channels run hotter, and not just in the end-of-run aggregate."""
        sim, tracer, _ = traced_faulty_run
        static = hotspot_report(sim)
        assert static["f-ring"].mean_utilization > static["other"].mean_utilization
        assert tracer.series.mean_ring_gap() > 0

    def test_window_zero_disables_series(self):
        sim = Simulator(faulty_config(measure_cycles=300))
        tracer = Tracer(sim, TraceConfig(window=0))
        sim.run()
        assert tracer.series is None


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------


class TestExporters:
    def test_jsonl_round_trip(self, traced_faulty_run, tmp_path):
        _, tracer, _ = traced_faulty_run
        path = write_jsonl(tracer.events, tmp_path / "events.jsonl")
        assert read_jsonl(path) == tracer.events

    def test_jsonl_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = events_to_jsonl([TraceEvent(1, DELIVER, 7, (0, 0), (1, 1))])
        path.write_text(good + '{"cycle": -3, "kind": "warp"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_jsonl(path)

    def test_csv_shape(self, traced_faulty_run):
        sim, tracer, _ = traced_faulty_run
        text = series_to_csv(tracer.series)
        lines = text.strip().splitlines()
        assert len(lines) == len(tracer.series.samples) + 1
        header = lines[0].split(",")
        assert header[:2] == ["cycle", "window"]
        assert header[-sim.net.base_classes:] == [
            f"c{i}_busy" for i in range(sim.net.base_classes)
        ]
        assert all(len(line.split(",")) == len(header) for line in lines[1:])

    def test_chrome_trace_validates(self, traced_faulty_run):
        _, tracer, _ = traced_faulty_run
        payload = to_chrome_trace(tracer.events, tracer.series)
        assert validate_chrome_trace(payload) == []
        phases = {entry["ph"] for entry in payload["traceEvents"]}
        assert phases == {"b", "e", "i", "C"}

    def test_chrome_spans_balanced(self, traced_faulty_run):
        _, tracer, _ = traced_faulty_run
        payload = to_chrome_trace(tracer.events)
        opens = [e["id"] for e in payload["traceEvents"] if e["ph"] == "b"]
        closes = [e["id"] for e in payload["traceEvents"] if e["ph"] == "e"]
        assert len(opens) == len(set(opens))
        assert len(closes) == len(set(closes))
        assert set(closes) <= set(opens)

    def test_chrome_validator_catches_problems(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "z", "pid": 1, "ts": 0},
            {"name": "not-a-kind", "ph": "i", "pid": 1, "ts": 1},
            {"name": "c", "ph": "C", "pid": 2, "ts": -1},
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) >= 3
        assert validate_chrome_trace({"nope": 1})
        assert validate_chrome_trace({"traceEvents": "nope"})

    def test_export_trace_writes_all_formats(self, traced_faulty_run, tmp_path):
        _, tracer, _ = traced_faulty_run
        paths = export_trace(tracer, tmp_path / "out", "run1")
        names = sorted(p.name for p in paths)
        assert names == [
            "run1.events.jsonl", "run1.series.csv", "run1.trace.json",
        ]
        assert all(p.exists() for p in paths)
        payload = json.loads((tmp_path / "out" / "run1.trace.json").read_text())
        assert validate_chrome_trace(payload) == []

    def test_export_trace_respects_format_subset(self, traced_faulty_run, tmp_path):
        _, tracer, _ = traced_faulty_run
        paths = export_trace(tracer, tmp_path, "sub", formats=("jsonl",))
        assert [p.name for p in paths] == ["sub.events.jsonl"]

    def test_validate_cli_on_exports(self, traced_faulty_run, tmp_path):
        from repro.obs.validate import main

        _, tracer, _ = traced_faulty_run
        paths = export_trace(tracer, tmp_path, "v")
        assert main([str(p) for p in paths]) == 0
        bad = tmp_path / "broken.trace.json"
        bad.write_text('{"traceEvents": [{"ph": "q"}]}')
        assert main([str(bad)]) == 1


# ----------------------------------------------------------------------
# Experiment / executor plumbing
# ----------------------------------------------------------------------


class TestExperimentTracing:
    CONFIG = dict(
        topology="torus", radix=8, dims=2, fault_percent=1,
        rate=0.01, warmup_cycles=200, measure_cycles=600, seed=5,
    )

    def test_traced_point_exports_and_matches_untraced(self, tmp_path):
        config = SimulationConfig(**self.CONFIG)
        plain = Experiment.point(config).run(jobs=1, cache=False)
        trace = TraceConfig(out_dir=str(tmp_path / "traces"))
        traced = Experiment.point(config, trace=trace).run(jobs=1, cache=False)
        assert list(plain) == list(traced), "tracing perturbed the results"
        files = sorted(p.name for p in (tmp_path / "traces").iterdir())
        assert len(files) == 3
        assert any(name.endswith(".trace.json") for name in files)

    def test_traced_parallel_sweep_exports_per_point(self, tmp_path):
        config = SimulationConfig(**self.CONFIG)
        trace = TraceConfig(out_dir=str(tmp_path / "traces"), events=False)
        sweep = Experiment.sweep(config, [0.006, 0.01], trace=trace)
        results = sweep.run(jobs=2, cache=False)
        assert len(results) == 2
        stems = {p.name.split(".")[0] for p in (tmp_path / "traces").iterdir()}
        assert len(stems) == 2, "each point should export under its own stem"

    def test_traced_tasks_bypass_store_loads(self, tmp_path):
        from repro.exec import ResultStore

        store = ResultStore(tmp_path / "store")
        config = SimulationConfig(**self.CONFIG)
        Experiment.point(config).run(jobs=1, store=store)
        trace = TraceConfig(out_dir=str(tmp_path / "traces"))
        traced = Experiment.point(config, trace=trace).run(jobs=1, store=store)
        assert traced.stats.cache_hits == 0, (
            "a cache-served trace run would produce no trace files"
        )
        assert (tmp_path / "traces").exists()


class TestCliTracing:
    def test_trace_flags_parse(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(
            ["fig8", "--trace", "--trace-out", "/tmp/t", "--trace-window", "50"]
        )
        assert args.trace and args.trace_out == "/tmp/t"
        assert args.trace_window == 50

    def test_trace_subcommand_listed(self):
        from repro.experiments.cli import _COMMANDS, _DESCRIPTIONS

        assert "trace" in _COMMANDS
        assert "trace" in _DESCRIPTIONS

    def test_trace_report_runs_and_exports(self, tmp_path, monkeypatch):
        from repro.experiments.context import RunContext
        from repro.experiments.tracecmd import trace_report

        monkeypatch.chdir(tmp_path)
        ctx = RunContext(
            scale_name="quick",
            trace=TraceConfig(out_dir=str(tmp_path / "traces"), window=100),
        )
        text = trace_report(ctx=ctx)
        assert "Event counts" in text
        assert "Hotspot gap" in text
        assert list((tmp_path / "traces").glob("trace-*.trace.json"))


# ----------------------------------------------------------------------
# taxonomy sanity
# ----------------------------------------------------------------------


class TestTaxonomy:
    def test_kind_constants_cover_the_frozen_set(self):
        assert {
            GENERATE, INJECT, VC_ALLOC, TRANSFER, MISROUTE_ENTER_RING,
            BLOCKED, DELIVER, TRUNCATE, RETRANSMIT,
        } == EVENT_KINDS

    def test_validate_event_rejects_unknown_fields(self):
        data = TraceEvent(1, DELIVER, 2, (0, 0), (1, 1)).to_dict()
        data["color"] = "red"
        assert any("unknown field" in p for p in validate_event(data))

    def test_validate_event_requires_required_fields(self):
        assert validate_event({"kind": DELIVER})
        assert any(
            "missing" in p for p in validate_event({"kind": DELIVER})
        )


# ----------------------------------------------------------------------
# executor-infrastructure events
# ----------------------------------------------------------------------


class TestExecEvents:
    def exec_events(self):
        return [
            ExecEvent(kind="task_crash", task_index=3, attempt=1,
                      key="a" * 64, detail="worker exited with code 1"),
            ExecEvent(kind="task_retry", task_index=3, attempt=2,
                      key="a" * 64, detail="retrying after crash"),
            ExecEvent(kind="task_quarantine", task_index=5, attempt=3),
        ]

    def test_kinds_cover_the_frozen_set(self):
        assert EXEC_EVENT_KINDS == {
            "task_retry", "task_timeout", "task_crash", "task_hung",
            "task_quarantine",
        }
        assert EXEC_EVENT_KINDS.isdisjoint(EVENT_KINDS)

    def test_dict_round_trip_validates(self):
        for event in self.exec_events():
            data = event.to_dict()
            assert validate_exec_event(data) == []
            assert ExecEvent.from_dict(data) == event

    def test_validation_rejects_bad_events(self):
        assert validate_exec_event({"kind": "task_crash"})  # missing fields
        bad_kind = ExecEvent(kind="task_warp", task_index=0, attempt=1).to_dict()
        assert validate_exec_event(bad_kind)
        extra = self.exec_events()[0].to_dict()
        extra["when"] = 12345  # wall-clock time would break determinism
        assert any("unknown field" in p for p in validate_exec_event(extra))

    def test_jsonl_round_trip(self, tmp_path):
        events = self.exec_events()
        path = write_exec_jsonl(events, tmp_path / "sweep.exec.jsonl")
        assert read_exec_jsonl(path) == events

    def test_read_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "bad.exec.jsonl"
        write_exec_jsonl(self.exec_events(), path)
        with open(path, "a") as handle:
            handle.write('{"kind": "task_warp", "task_index": 0, "attempt": 1}\n')
        with pytest.raises(ValueError, match="bad.exec.jsonl:4"):
            read_exec_jsonl(path)

    def test_validator_cli_routes_on_double_suffix(self, tmp_path):
        """python -m repro.obs.validate must apply the exec schema to
        *.exec.jsonl and the lifecycle schema to every other *.jsonl."""
        from repro.obs.validate import validate_jsonl_file

        exec_path = write_exec_jsonl(
            self.exec_events(), tmp_path / "sweep.exec.jsonl"
        )
        assert validate_jsonl_file(exec_path) == []
        # the same payload under a lifecycle name must NOT validate
        plain = tmp_path / "sweep.events.jsonl"
        plain.write_text(exec_path.read_text())
        assert validate_jsonl_file(plain)

    def test_validator_main_accepts_exec_exports(self, tmp_path, capsys):
        from repro.obs.validate import main as validate_main

        path = write_exec_jsonl(self.exec_events(), tmp_path / "s.exec.jsonl")
        assert validate_main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_experiment_exports_exec_events_when_traced(
        self, tmp_path, monkeypatch
    ):
        """An infra incident during a traced experiment lands in
        <label>.exec.jsonl next to the other trace files."""
        import repro.api as api_module
        from repro.exec import ExecutionStats

        config = SimulationConfig(
            topology="torus", radix=6, dims=2, rate=0.01,
            warmup_cycles=0, measure_cycles=10, seed=1,
        )
        payload = Simulator(config).run()

        def execute_with_incidents(tasks, **kwargs):
            stats = ExecutionStats(total=len(tasks), executed=len(tasks))
            stats.infra_events.extend(self.exec_events())
            return [payload] * len(tasks), stats

        monkeypatch.setattr(api_module, "execute", execute_with_incidents)
        trace = TraceConfig(out_dir=str(tmp_path / "traces"))
        Experiment.point(config, trace=trace).run(jobs=1, cache=False)
        (path,) = (tmp_path / "traces").glob("*.exec.jsonl")
        assert len(read_exec_jsonl(path)) == 3

"""Unit tests for coordinate arithmetic."""

import pytest

from repro.topology import (
    Direction,
    all_coords,
    coord_to_id,
    id_to_coord,
    ring_span,
    ring_span_length,
    torus_distance,
)
from repro.topology.coordinates import step


class TestDirection:
    def test_values(self):
        assert int(Direction.POS) == 1
        assert int(Direction.NEG) == -1

    def test_opposite(self):
        assert Direction.POS.opposite is Direction.NEG
        assert Direction.NEG.opposite is Direction.POS

    def test_symbols(self):
        assert Direction.POS.symbol == "+"
        assert Direction.NEG.symbol == "-"


class TestIdConversion:
    def test_dim0_is_least_significant(self):
        # coord == (x0, x1); x0 is the fastest-varying digit
        assert coord_to_id((2, 1), 4) == 6
        assert coord_to_id((0, 0), 4) == 0
        assert coord_to_id((3, 3), 4) == 15

    def test_roundtrip_2d(self):
        for node_id in range(64):
            assert coord_to_id(id_to_coord(node_id, 8, 2), 8) == node_id

    def test_roundtrip_3d(self):
        for node_id in range(5**3):
            assert coord_to_id(id_to_coord(node_id, 5, 3), 5) == node_id

    def test_out_of_range_coord(self):
        with pytest.raises(ValueError):
            coord_to_id((4, 0), 4)
        with pytest.raises(ValueError):
            coord_to_id((-1, 0), 4)

    def test_out_of_range_id(self):
        with pytest.raises(ValueError):
            id_to_coord(16, 4, 2)
        with pytest.raises(ValueError):
            id_to_coord(-1, 4, 2)

    def test_all_coords_order_and_count(self):
        coords = list(all_coords(3, 2))
        assert len(coords) == 9
        assert coords[0] == (0, 0)
        assert coords[1] == (1, 0)  # dim 0 varies fastest
        assert coords[-1] == (2, 2)


class TestStep:
    def test_wrapping_step(self):
        assert step((3, 0), 0, Direction.POS, 4, wrap=True) == (0, 0)
        assert step((0, 2), 0, Direction.NEG, 4, wrap=True) == (3, 2)

    def test_interior_step_without_wrap(self):
        assert step((1, 1), 1, Direction.POS, 4, wrap=False) == (1, 2)

    def test_boundary_step_without_wrap_raises(self):
        with pytest.raises(ValueError):
            step((3, 0), 0, Direction.POS, 4, wrap=False)
        with pytest.raises(ValueError):
            step((0, 0), 0, Direction.NEG, 4, wrap=False)

    def test_untouched_dims(self):
        assert step((1, 2, 3), 1, Direction.POS, 5, wrap=True) == (1, 3, 3)


class TestTorusDistance:
    def test_forward_shorter(self):
        assert torus_distance(0, 2, 8) == 2

    def test_backward_shorter(self):
        assert torus_distance(0, 6, 8) == 2

    def test_halfway(self):
        assert torus_distance(0, 4, 8) == 4

    def test_same(self):
        assert torus_distance(5, 5, 8) == 0


class TestRingSpan:
    def test_simple(self):
        assert list(ring_span(2, 5, 8)) == [2, 3, 4, 5]

    def test_wrapping(self):
        assert list(ring_span(6, 1, 8)) == [6, 7, 0, 1]

    def test_single(self):
        assert list(ring_span(3, 3, 8)) == [3]

    def test_length_matches(self):
        for lo in range(8):
            for hi in range(8):
                assert ring_span_length(lo, hi, 8) == len(list(ring_span(lo, hi, 8)))

"""Tests for the self-chaos harness (repro.exec.chaos): the
deterministic sweep builder, the self-killing task wrapper, and a small
end-to-end worker-kill campaign.  The combined worker-kill +
parent-kill property lives in tests/test_exec_executor.py
(TestKillAndResume); CI additionally runs the full 16x16 campaign.
"""

import os

from repro.exec import PointTask, task_key
from repro.exec.chaos import ChaosTask, build_sweep, run_chaos
from repro.sim import Simulator


class TestBuildSweep:
    def test_deterministic_and_rate_swept(self):
        rates = (0.004, 0.008, 0.012)
        sweep = build_sweep(radix=8, rates=rates)
        assert sweep == build_sweep(radix=8, rates=rates)
        assert [c.rate for c in sweep] == list(rates)
        assert {c.radix for c in sweep} == {8}
        assert {c.fault_percent for c in sweep} == {1}


class TestChaosTask:
    def test_delegates_identity_to_inner(self):
        inner = PointTask(build_sweep(radix=6)[0])
        wrapped = ChaosTask(inner, kill_marker="/nonexistent/marker")
        assert wrapped.config == inner.config
        assert wrapped.cacheable is True
        # keys must agree: resumed rounds mix wrapped and unwrapped tasks
        assert wrapped.checkpoint_key("v") == task_key(inner, "v")

    def test_missing_marker_runs_normally(self, tmp_path):
        cfg = build_sweep(radix=6, warmup=100, measure=300)[0]
        wrapped = ChaosTask(PointTask(cfg), kill_marker=str(tmp_path / "gone"))
        assert wrapped.execute() == Simulator(cfg).run()

    def test_claimed_marker_runs_normally(self, tmp_path):
        """The second claimant (a retry, or a resumed round) must not
        die again."""
        cfg = build_sweep(radix=6, warmup=100, measure=300)[0]
        marker = tmp_path / "kill-0"
        (tmp_path / "kill-0.claimed").touch()  # someone already died here
        wrapped = ChaosTask(PointTask(cfg), kill_marker=str(marker))
        assert wrapped.execute() == Simulator(cfg).run()

    def test_no_marker_disables_the_kill(self):
        cfg = build_sweep(radix=6, warmup=100, measure=300)[0]
        assert ChaosTask(PointTask(cfg)).execute() == Simulator(cfg).run()


class TestRunChaos:
    def test_worker_kill_campaign_stays_identical(self, tmp_path):
        """One round, worker kills only: the executor retries the killed
        workers' tasks and the surviving sweep matches the serial run."""
        report = run_chaos(
            tmp_path / "chaos",
            radix=6,
            jobs=2,
            seed=7,
            worker_kills=2,
            parent_kills=0,
            rates=(0.004, 0.008, 0.012, 0.016),
            warmup=100,
            measure=300,
        )
        assert report.ok, report.describe()
        assert report.rounds == 1 and report.parent_kills == 0
        assert report.worker_kills_claimed == 2
        assert report.identical and report.fsck_report.clean
        assert "chaos run PASSED" in report.describe()
        # every marker was claimed, none left armed
        markers = tmp_path / "chaos" / "markers"
        assert not [p for p in os.listdir(markers) if not p.endswith(".claimed")]

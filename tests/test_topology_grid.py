"""Unit tests for the torus/mesh network structure."""

import pytest

from repro.topology import BiLink, Direction, Mesh, Torus, make_network


class TestConstruction:
    def test_num_nodes(self):
        assert Torus(4, 2).num_nodes == 16
        assert Mesh(4, 3).num_nodes == 64

    def test_invalid_radix(self):
        with pytest.raises(ValueError):
            Torus(1, 2)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Mesh(4, 0)

    def test_factory(self):
        assert isinstance(make_network("torus", 4, 2), Torus)
        assert isinstance(make_network("MESH", 4, 2), Mesh)
        with pytest.raises(ValueError):
            make_network("hypercube", 4, 2)


class TestNeighbors:
    def test_torus_every_node_has_2n_neighbors(self):
        t = Torus(4, 2)
        for coord in t.nodes():
            assert len(list(t.neighbors(coord))) == 4

    def test_mesh_corner_has_n_neighbors(self):
        m = Mesh(4, 2)
        assert len(list(m.neighbors((0, 0)))) == 2
        assert len(list(m.neighbors((3, 3)))) == 2

    def test_mesh_edge_and_interior(self):
        m = Mesh(4, 2)
        assert len(list(m.neighbors((1, 0)))) == 3
        assert len(list(m.neighbors((1, 1)))) == 4

    def test_torus_wraparound_neighbor(self):
        t = Torus(4, 2)
        assert t.neighbor((3, 1), 0, Direction.POS) == (0, 1)
        assert t.neighbor((1, 0), 1, Direction.NEG) == (1, 3)

    def test_mesh_boundary_neighbor_is_none(self):
        m = Mesh(4, 2)
        assert m.neighbor((3, 1), 0, Direction.POS) is None
        assert m.neighbor((1, 0), 1, Direction.NEG) is None

    def test_bad_dim_raises(self):
        with pytest.raises(ValueError):
            Torus(4, 2).neighbor((0, 0), 2, Direction.POS)


class TestLinks:
    def test_torus_link_count(self):
        t = Torus(8, 2)
        links = list(t.links())
        assert len(links) == t.num_links() == 2 * 8 * 8

    def test_mesh_link_count(self):
        m = Mesh(8, 2)
        assert len(list(m.links())) == m.num_links() == 2 * 7 * 8

    def test_3d_counts(self):
        assert Torus(4, 3).num_links() == 3 * 4 * 16
        assert Mesh(4, 3).num_links() == 3 * 3 * 16

    def test_links_reported_once(self):
        t = Torus(4, 2)
        links = list(t.links())
        assert len(links) == len(set(links))

    def test_bilink_normalized(self):
        link = BiLink.between((3, 0), (0, 0), 0, 4)
        assert link.u == (0, 0) and link.v == (3, 0)
        assert BiLink.between((0, 0), (3, 0), 0, 4) == link


class TestWraparound:
    def test_torus_wraparound_hops(self):
        t = Torus(4, 2)
        assert t.is_wraparound_hop((3, 0), 0, Direction.POS)
        assert t.is_wraparound_hop((0, 2), 0, Direction.NEG)
        assert not t.is_wraparound_hop((1, 0), 0, Direction.POS)

    def test_mesh_never_wraps(self):
        m = Mesh(4, 2)
        assert not m.is_wraparound_hop((3, 0), 0, Direction.POS)


class TestRoutingQueries:
    def test_minimal_direction_torus(self):
        t = Torus(8, 2)
        assert t.minimal_direction(0, 2) is Direction.POS
        assert t.minimal_direction(0, 6) is Direction.NEG
        assert t.minimal_direction(0, 4) is Direction.POS  # tie -> POS
        assert t.minimal_direction(3, 3) is None

    def test_minimal_direction_mesh(self):
        m = Mesh(8, 2)
        assert m.minimal_direction(0, 7) is Direction.POS
        assert m.minimal_direction(7, 0) is Direction.NEG

    def test_distance_torus(self):
        t = Torus(8, 2)
        assert t.distance((0, 0), (7, 7)) == 2  # wrap both dims
        assert t.distance((0, 0), (4, 4)) == 8

    def test_distance_mesh(self):
        m = Mesh(8, 2)
        assert m.distance((0, 0), (7, 7)) == 14

    def test_crosses_dateline(self):
        t = Torus(8, 2)
        assert t.crosses_dateline(6, 1, Direction.POS)  # 6->7->0->1
        assert not t.crosses_dateline(1, 6, Direction.POS)
        assert t.crosses_dateline(1, 6, Direction.NEG)  # 1->0->7->6
        assert not t.crosses_dateline(6, 1, Direction.NEG)

    def test_mesh_never_crosses_dateline(self):
        m = Mesh(8, 2)
        assert not m.crosses_dateline(0, 7, Direction.POS)

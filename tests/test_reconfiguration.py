"""Tests for runtime fault injection and network reconfiguration."""

import pytest

from repro.faults import NetworkDisconnectedError
from repro.router import ChannelKind
from repro.sim import SimulationConfig, Simulator


def running_sim(rate=0.015, radix=8, cycles=500, **kwargs):
    config = SimulationConfig(
        topology="torus", radix=radix, dims=2, rate=rate,
        warmup_cycles=0, measure_cycles=10, **kwargs,
    )
    sim = Simulator(config)
    for _ in range(cycles):
        sim.step()
    return sim


class TestFaultEvent:
    def test_node_failure_report(self):
        sim = running_sim()
        report = sim.inject_runtime_fault(nodes=[(4, 4)])
        assert report.new_node_faults == ((4, 4),)
        assert report.channels_removed == 12  # 8 internode + inj/del + 2 interchip
        assert report.dropped_in_flight >= 0

    def test_link_failure_report(self):
        sim = running_sim()
        report = sim.inject_runtime_fault(links=[((1, 1), 0, 1)])
        assert report.channels_removed == 2
        assert len(report.new_link_faults) == 1

    def test_structures_rebuilt(self):
        sim = running_sim()
        sim.inject_runtime_fault(nodes=[(4, 4)])
        assert (4, 4) not in sim.net.nodes
        assert (4, 4) not in sim.net.healthy
        assert len(sim.net.scenario.ring_index.rings) == 1
        assert any(ch.on_ring for ch in sim.net.channels)
        assert (4, 4) not in sim.traffic.healthy_set

    def test_no_channel_touches_dead_node(self):
        sim = running_sim()
        sim.inject_runtime_fault(nodes=[(4, 4)])
        for channel in sim.net.channels:
            assert channel.src_node != (4, 4) and channel.dst_node != (4, 4)
        for node in sim.net.nodes.values():
            for module in node.modules:
                for channel in module.outputs.values():
                    assert channel.dst_node != (4, 4)

    def test_bisection_bandwidth_updated(self):
        sim = running_sim()
        before = sim.net.bisection_bandwidth
        sim.inject_runtime_fault(links=[((3, 2), 0, 1)])  # a bisection link
        assert sim.net.bisection_bandwidth == before - 2

    def test_rejected_event_changes_nothing(self):
        sim = running_sim()
        sim.inject_runtime_fault(nodes=[(4, 4)])
        channels_before = len(sim.net.channels)
        # a fatal pattern (this one spans a full torus ring, disconnecting
        # the network) must be rejected atomically
        with pytest.raises(NetworkDisconnectedError):
            sim.inject_runtime_fault(nodes=[(0, j) for j in range(7)])
        assert len(sim.net.channels) == channels_before
        assert sim.fault_events == 1

    def test_overlapping_event_degrades(self):
        # this pattern used to be rejected with RingGeometryError; the
        # degraded-mode pipeline now merges the overlapping rings into one
        # enclosing block, sacrificing the healthy nodes in between
        sim = running_sim()
        sim.inject_runtime_fault(nodes=[(4, 4)])
        report = sim.inject_runtime_fault(nodes=[(5, 6)])
        assert report.degraded_nodes == ((4, 5), (4, 6), (5, 4), (5, 5))
        assert report.convexify_steps >= 1
        assert len(sim.net.scenario.ring_index.rings) == 1
        for coord in report.degraded_nodes:
            assert coord not in sim.net.nodes
            assert coord not in sim.net.healthy
        assert sim.degraded_nodes_total == 4
        sim.drain()
        assert sim.in_flight == 0

    def test_empty_event_rejected(self):
        sim = running_sim()
        with pytest.raises(ValueError):
            sim.inject_runtime_fault()


class TestTrafficContinuity:
    def test_network_keeps_operating_and_drains(self):
        sim = running_sim()
        delivered_before = sum(
            1 for q in sim.queues.values() for _m in q
        )  # just exercise accounting
        sim.inject_runtime_fault(nodes=[(4, 4)])
        for _ in range(600):
            sim.step()
        sim.drain()
        assert sim.in_flight == 0

    def test_messages_detour_after_event(self):
        sim = running_sim(rate=0.0, cycles=5)
        sim.inject_runtime_fault(nodes=[(4, 4)])
        message = sim.inject_message((2, 4), (6, 4))
        sim.drain()
        assert message.consumed_cycle is not None
        assert message.route.misroute_hops > 0 or message.route.normal_hops > 4

    def test_sequential_fault_events(self):
        sim = running_sim()
        first = sim.inject_runtime_fault(nodes=[(2, 2)])
        for _ in range(300):
            sim.step()
        second = sim.inject_runtime_fault(nodes=[(6, 6)])
        for _ in range(300):
            sim.step()
        sim.drain()
        assert sim.in_flight == 0
        assert len(sim.net.scenario.ring_index.rings) == 2

    def test_victims_no_longer_hold_channels(self):
        sim = running_sim(rate=0.03)
        report = sim.inject_runtime_fault(nodes=[(4, 4)])
        lost = set(report.lost_message_ids)
        for channel in sim.net.channels:
            for vc in channel.busy:
                assert vc.message.msg_id not in lost

    def test_accounting_consistent_after_event(self):
        sim = running_sim(rate=0.03)
        sim.inject_runtime_fault(nodes=[(4, 4)])
        assert sim.in_flight >= 0
        assert all(v >= 0 for v in sim.outstanding.values())
        sim.drain()
        assert sim.in_flight == 0

    def test_request_reply_survives_event(self):
        sim = running_sim(rate=0.008, protocol_classes=2, request_reply=True)
        sim.inject_runtime_fault(nodes=[(4, 4)])
        for _ in range(500):
            sim.step()
        sim.drain()
        assert sim.in_flight == 0


class TestRuntimeFaultEdgeCases:
    def test_injection_at_cycle_zero(self):
        sim = running_sim(rate=0.01, cycles=0)
        report = sim.inject_runtime_fault(nodes=[(4, 4)])
        assert sim.now == 0
        assert report.cycle == 0
        assert report.dropped_in_flight == 0 and report.dropped_queued == 0
        for _ in range(300):
            sim.step()
        sim.drain()
        assert sim.in_flight == 0

    def test_back_to_back_injections_same_cycle(self):
        sim = running_sim(rate=0.015)
        first = sim.inject_runtime_fault(nodes=[(2, 2)])
        second = sim.inject_runtime_fault(nodes=[(6, 6)])
        assert first.cycle == second.cycle == sim.now
        assert len(sim.net.scenario.ring_index.rings) == 2
        assert sim.fault_events == 2
        sim.drain()
        assert sim.in_flight == 0

    def test_mid_misroute_message_is_killed(self):
        # a worm caught while detouring around one fault region is a
        # victim of the next event, wherever that event lands: its ring
        # geometry may have changed under it
        sim = running_sim(rate=0.0, cycles=0)
        sim.inject_runtime_fault(nodes=[(4, 4)])
        message = sim.inject_message((2, 4), (6, 4))
        steps = 0
        while not (message.route.is_misrouted and message.consumed_cycle is None):
            sim.step()
            steps += 1
            assert steps < 300, "message never started misrouting"
        report = sim.inject_runtime_fault(nodes=[(0, 0)])
        assert message.msg_id in report.lost_message_ids
        sim.drain()
        assert message.consumed_cycle is None  # gone for good: no transport
        assert sim.killed_in_flight >= 1

    def test_survivability_counters_accumulate(self):
        sim = running_sim(rate=0.03)
        report = sim.inject_runtime_fault(nodes=[(4, 4)])
        assert sim.fault_events == 1
        assert sim.killed_in_flight == report.dropped_in_flight
        assert sim.killed_queued == report.dropped_queued
        sim.drain()
        result = sim._result()
        assert result.fault_events == 1
        assert not result.reliability_enabled
        assert result.lost_messages == result.killed_in_flight + result.killed_queued

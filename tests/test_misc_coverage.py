"""Small-surface tests: public API integrity, reprs, error paths and
utility corners not exercised elsewhere."""

import pytest

import repro
from repro.faults import DoubledInterval
from repro.core import MessageRoute, MisroutePhase
from repro.router.messages import Message
from repro.sim.deadlock import stuck_worm_report
from repro.topology import Torus


class TestPublicApi:
    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.core
        import repro.experiments
        import repro.faults
        import repro.router
        import repro.sim
        import repro.topology

        for module in (
            repro.analysis, repro.core, repro.experiments, repro.faults,
            repro.router, repro.sim, repro.topology,
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (module.__name__, name)

    def test_version(self):
        assert repro.__version__


class TestMessageAccounting:
    def _message(self):
        t = Torus(4, 2)
        route = MessageRoute(src=(0, 0), dst=(1, 0))
        return Message(7, (0, 0), (1, 0), 20, route, generated_cycle=5, is_bisection=False)

    def test_latency_before_consumption_raises(self):
        with pytest.raises(ValueError):
            self._message().latency

    def test_queueing_before_injection_raises(self):
        with pytest.raises(ValueError):
            self._message().queueing_delay

    def test_lifecycle(self):
        message = self._message()
        message.injected_cycle = 8
        message.consumed_cycle = 42
        assert message.queueing_delay == 3
        assert message.latency == 34

    def test_repr(self):
        assert "#7" in repr(self._message())


class TestMisrouteStateLabel:
    def test_message_type_label(self):
        from repro.faults import FaultSet, validate_fault_pattern
        from repro.core import FaultTolerantRouting
        from repro.topology import Direction

        t = Torus(8, 2)
        scenario = validate_fault_pattern(t, FaultSet(frozenset({(4, 4)})))
        router = FaultTolerantRouting.for_scenario(t, scenario)
        state = router.initial_state((2, 4), (6, 4))
        router.next_hop(state, (3, 4))  # enters misroute
        assert state.misroute is not None
        assert state.misroute.message_type == "DIM0+"


class TestDoubledIntervalCorners:
    def test_wraps_property(self):
        assert DoubledInterval(14, 4, 16).wraps
        assert not DoubledInterval(2, 4, 16).wraps
        assert not DoubledInterval(2, 4, 0).wraps


class TestDeadlockReport:
    def test_report_limits_output(self):
        from repro.sim import SimulationConfig, Simulator

        sim = Simulator(
            SimulationConfig(topology="torus", radix=8, dims=2, rate=0.05,
                             warmup_cycles=0, measure_cycles=10)
        )
        for _ in range(300):
            sim.step()
        report = stuck_worm_report(sim.net.channels, limit=5)
        assert report.count("msg#") <= 6  # 5 entries + possible summary line

    def test_report_empty_network(self):
        from repro.sim import SimulationConfig, Simulator

        sim = Simulator(
            SimulationConfig(topology="torus", radix=4, dims=2,
                             warmup_cycles=0, measure_cycles=1)
        )
        assert "no busy" in stuck_worm_report(sim.net.channels)


class TestNetworkDescribe:
    def test_describe_fields(self):
        from repro.sim import SimulationConfig, SimNetwork

        net = SimNetwork(SimulationConfig(topology="mesh", radix=8, dims=2))
        text = net.describe()
        assert "mesh 8^2" in text
        assert "2 VCs" in text
        assert "bisection 16" in text

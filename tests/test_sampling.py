"""Edge cases of the stream-exact batched traffic sampler.

The contract under test: for every sequence of per-cycle ``(nodes,
rate)`` parameters — including degenerate rates, mid-block parameter
changes and the numpy-free fallback — the sampler hands out exactly the
hits the inline per-node loop would, and leaves the shared RNG in the
inline loop's state whenever it is flushed or a block is exhausted.
"""

import random

import pytest

import repro.sim.sampling as sampling
from repro.sim.sampling import GeometricSampler

SEED = 1234


def inline_cycle(rng, nodes, rate):
    """The reference per-node loop the sampler must reproduce."""
    return [i for i in range(nodes) if rng.random() < rate]


def assert_stream_exact(schedule, seed=SEED):
    """Run the sampler and the inline loop on the same (nodes, rate)
    schedule and demand identical hits every cycle and identical RNG
    state at the end (after folding back any partial block)."""
    sampler_rng = random.Random(seed)
    inline_rng = random.Random(seed)
    sampler = GeometricSampler(sampler_rng)
    for nodes, rate in schedule:
        assert sampler.next_cycle(nodes, rate) == inline_cycle(inline_rng, nodes, rate)
    sampler.flush()
    assert sampler_rng.getstate() == inline_rng.getstate()


class TestDegenerateRates:
    def test_rate_one_hits_every_node(self):
        # random() < 1.0 is true for every draw: all-hit blocks
        assert_stream_exact([(7, 1.0)] * 50)

    def test_rate_just_below_one(self):
        assert_stream_exact([(7, 1.0 - 1e-12)] * 50)

    def test_rate_above_one_clamps_to_all_hits(self):
        assert_stream_exact([(5, 1.5)] * 20)

    def test_rate_zero_still_consumes_draws(self):
        # the sampler may only be called with rate > 0 by the engine,
        # but the stream contract holds for 0 too: draws are consumed
        assert_stream_exact([(6, 0.0)] * 20 + [(6, 0.5)] * 20)

    def test_zero_nodes_consumes_nothing(self):
        rng = random.Random(SEED)
        state = rng.getstate()
        sampler = GeometricSampler(rng)
        assert sampler.next_cycle(0, 0.5) == []
        sampler.flush()
        assert rng.getstate() == state


class TestMidBlockChanges:
    def test_rate_change_mid_block_rewinds(self):
        # 3 nodes -> a block spans thousands of cycles; change the rate
        # after 17 cycles, well inside the first block
        schedule = [(3, 0.25)] * 17 + [(3, 0.75)] * 17 + [(3, 0.01)] * 17
        assert_stream_exact(schedule)

    def test_drain_style_rate_drop_then_resume(self):
        schedule = [(4, 0.3)] * 11 + [(4, 0.05)] * 11 + [(4, 0.3)] * 11
        assert_stream_exact(schedule)

    def test_healthy_set_shrink_mid_block(self):
        # a runtime fault removes nodes from the healthy set: the draw
        # count per cycle changes and the block must rewind exactly
        schedule = [(64, 0.1)] * 9 + [(63, 0.1)] * 9 + [(60, 0.1)] * 9
        assert_stream_exact(schedule)

    def test_shrink_and_rate_change_together(self):
        schedule = [(10, 0.2)] * 5 + [(8, 0.9)] * 5 + [(8, 1.0)] * 5 + [(7, 0.001)] * 5
        assert_stream_exact(schedule)

    def test_flush_mid_block_positions_rng_at_first_unconsumed_draw(self):
        sampler_rng = random.Random(SEED)
        inline_rng = random.Random(SEED)
        sampler = GeometricSampler(sampler_rng)
        for _ in range(13):
            assert sampler.next_cycle(5, 0.4) == inline_cycle(inline_rng, 5, 0.4)
        sampler.flush()
        # after the flush both streams must produce the same raw doubles
        assert [sampler_rng.random() for _ in range(32)] == [
            inline_rng.random() for _ in range(32)
        ]

    def test_block_exhaustion_commits_end_state(self):
        # 4096 nodes -> _BLOCK_TARGET//4096 = 8 cycles per block: cross
        # several block boundaries and keep exactness throughout
        assert_stream_exact([(4096, 0.003)] * 20)


class TestNumpyFreeFallback:
    @pytest.fixture
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(sampling, "_np", None)

    def test_fallback_is_stream_exact(self, no_numpy):
        schedule = [(7, 0.3)] * 23 + [(5, 1.0)] * 7 + [(5, 0.0)] * 7
        assert_stream_exact(schedule)

    def test_fallback_never_buffers(self, no_numpy):
        # the fallback draws inline, so the RNG is always current and
        # flush has nothing to fold back
        rng = random.Random(SEED)
        sampler = GeometricSampler(rng)
        sampler.next_cycle(9, 0.5)
        state = rng.getstate()
        sampler.flush()
        assert rng.getstate() == state


class TestStateTransplant:
    def test_numpy_state_round_trip(self):
        pytest.importorskip("numpy")
        rng = random.Random(SEED)
        rng.random()  # advance off the seed state
        state = rng.getstate()
        back = sampling._from_numpy_state(sampling._to_numpy_state(state))
        # the gauss cache (third element) is not carried by numpy; the
        # MT19937 word state and position must survive exactly
        assert back[0] == state[0]
        assert back[1] == state[1]

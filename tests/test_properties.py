"""Property-based tests (hypothesis) for the core invariants.

These mechanize the paper's claims over randomized inputs:

* the blocking rule always yields convex (box) components (Section 3);
* fault rings enclose their regions with healthy nodes;
* fault-tolerant routing delivers every message, with bounded detours
  (Lemma 2), for random fault patterns and random endpoints;
* per-type virtual channel usage on shared internode channels is
  pairwise disjoint (Lemma 1's first claim).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FaultTolerantRouting, ecube_path
from repro.faults import (
    FaultGenerationError,
    FaultSet,
    apply_block_fault_rule,
    extract_fault_regions,
    generate_fault_pattern,
    node_fault_region,
    validate_fault_pattern,
)
from repro.topology import Mesh, Torus, coord_to_id, id_to_coord

RADIX = 8
TORUS = Torus(RADIX, 2)
MESH = Mesh(RADIX, 2)

coords = st.tuples(st.integers(0, RADIX - 1), st.integers(0, RADIX - 1))
fault_patterns = st.sets(coords, min_size=1, max_size=5)


def scenario_for(network, seed, percent=5):
    try:
        return generate_fault_pattern(
            network,
            *(1, 2) if percent == 5 else (0, 1),
            random.Random(seed),
            max_tries=2000,
        )
    except FaultGenerationError:
        return None


class TestCoordinateProperties:
    @given(st.integers(0, RADIX**2 - 1))
    def test_id_roundtrip(self, node_id):
        assert coord_to_id(id_to_coord(node_id, RADIX, 2), RADIX) == node_id

    @given(coords, coords)
    def test_distance_symmetric(self, a, b):
        assert TORUS.distance(a, b) == TORUS.distance(b, a)
        assert MESH.distance(a, b) == MESH.distance(b, a)

    @given(coords, coords)
    def test_torus_distance_at_most_mesh(self, a, b):
        assert TORUS.distance(a, b) <= MESH.distance(a, b)

    @given(coords, coords)
    def test_triangle_inequality(self, a, b):
        c = (0, 0)
        assert TORUS.distance(a, b) <= TORUS.distance(a, c) + TORUS.distance(c, b)


class TestBlockingRuleProperties:
    @given(fault_patterns)
    @settings(max_examples=60, deadline=None)
    def test_components_become_boxes(self, pattern):
        blocked = apply_block_fault_rule(TORUS, frozenset(pattern))
        # every connected component must be a filled box (or the blocking
        # expansion disconnected the ring, in which case extraction raises
        # the dedicated errors, never a generic one)
        from repro.faults import NetworkDisconnectedError, NonConvexFaultError

        try:
            _b, regions = extract_fault_regions(TORUS, FaultSet(blocked), block=False)
        except (NetworkDisconnectedError, NonConvexFaultError):
            return
        recovered = set()
        for region in regions:
            recovered.update(region.faulty_nodes(TORUS))
        assert recovered == set(blocked)

    @given(fault_patterns)
    @settings(max_examples=60, deadline=None)
    def test_blocking_monotone_and_idempotent(self, pattern):
        once = apply_block_fault_rule(TORUS, frozenset(pattern))
        assert set(pattern) <= once
        assert apply_block_fault_rule(TORUS, once) == once


class TestRingProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_rings_enclose_and_are_healthy(self, seed):
        scenario = scenario_for(TORUS, seed)
        if scenario is None:
            return
        for ring in scenario.ring_index.rings:
            nodes = ring.perimeter_nodes()
            assert all(node not in scenario.faults.node_faults for node in nodes)
            region = scenario.ring_index.regions[ring.region_index]
            for node in nodes:
                assert not region.contains_node(node)


class TestRoutingProperties:
    @given(st.integers(0, 10_000), st.data())
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_delivery_with_bounded_detour_torus(self, seed, data):
        scenario = scenario_for(TORUS, seed)
        if scenario is None:
            return
        router = FaultTolerantRouting.for_scenario(TORUS, scenario)
        healthy = [c for c in TORUS.nodes() if c not in scenario.faults.node_faults]
        src = data.draw(st.sampled_from(healthy))
        dst = data.draw(st.sampled_from(healthy))
        if src == dst:
            return
        path = router.route_path(src, dst)
        assert path[0] == src and path[-1] == dst
        assert all(node not in scenario.faults.node_faults for node in path)
        # Lemma 2: bounded misrouting — generously, minimal + total ring
        # perimeter budget
        budget = TORUS.distance(src, dst) + sum(
            2 * (r.span_length(0) + r.span_length(1)) for r in scenario.ring_index.rings
        )
        assert len(path) - 1 <= budget

    @given(st.integers(0, 10_000), st.data())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_delivery_mesh(self, seed, data):
        scenario = scenario_for(MESH, seed)
        if scenario is None:
            return
        router = FaultTolerantRouting.for_scenario(MESH, scenario)
        healthy = [c for c in MESH.nodes() if c not in scenario.faults.node_faults]
        src = data.draw(st.sampled_from(healthy))
        dst = data.draw(st.sampled_from(healthy))
        if src == dst:
            return
        path = router.route_path(src, dst)
        assert path[-1] == dst

    @given(coords, coords)
    @settings(max_examples=100)
    def test_fault_free_routing_is_minimal(self, src, dst):
        if src == dst:
            return
        router = FaultTolerantRouting(TORUS)
        path = router.route_path(src, dst)
        assert len(path) - 1 == TORUS.distance(src, dst)
        assert path == ecube_path(TORUS, src, dst)


class TestLemma1Disjointness:
    @given(st.integers(0, 2_000))
    @settings(max_examples=20, deadline=None)
    def test_types_sharing_channel_use_disjoint_classes(self, seed):
        """Collect, per internode channel, the (message type, class) pairs
        used across all-pairs routing; different types on one channel must
        never use the same class."""
        scenario = scenario_for(TORUS, seed)
        if scenario is None:
            return
        router = FaultTolerantRouting.for_scenario(TORUS, scenario)
        healthy = [c for c in TORUS.nodes() if c not in scenario.faults.node_faults]
        usage = {}
        rng = random.Random(seed)
        for _ in range(300):
            src, dst = rng.sample(healthy, 2)
            state = router.initial_state(src, dst)
            current = src
            while True:
                decision = router.next_hop(state, current)
                if decision.consume:
                    break
                channel = (current, decision.dim, decision.direction)
                usage.setdefault(channel, {}).setdefault(decision.vc_class, set()).add(
                    state.msg_dim
                )
                current = router.commit_hop(state, current, decision)
        for channel, by_class in usage.items():
            for vc_class, msg_dims in by_class.items():
                assert len(msg_dims) == 1, (
                    f"channel {channel} class {vc_class} shared by types {msg_dims}"
                )


class TestValidationProperties:
    @given(fault_patterns)
    @settings(max_examples=40, deadline=None)
    def test_validate_never_crashes_unexpectedly(self, pattern):
        """validate_fault_pattern either returns a scenario or raises one
        of the documented model errors."""
        from repro.faults import (
            NetworkDisconnectedError,
            NonConvexFaultError,
            RingGeometryError,
        )

        try:
            scenario = validate_fault_pattern(
                TORUS, FaultSet(frozenset(pattern)), allow_blocking=True
            )
        except (NonConvexFaultError, RingGeometryError, NetworkDisconnectedError):
            return
        assert scenario.ring_index.rings_healthy(scenario.faults)


class TestOverlappingRingProperties:
    """Random overlapping-ring scenarios stay deadlock-free under the
    layered ([8]) allocation — checked both by delivery and by the CDG."""

    @given(st.integers(0, 5_000), st.data())
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_layered_delivery(self, seed, data):
        from repro.faults import FaultGenerationError, generate_overlapping_pattern

        network = Torus(10, 2)
        try:
            scenario = generate_overlapping_pattern(
                network, 3, random.Random(seed), max_tries=3_000
            )
        except FaultGenerationError:
            return
        router = FaultTolerantRouting.for_scenario(network, scenario)
        assert router.num_vc_classes == 8
        healthy = [c for c in network.nodes() if c not in scenario.faults.node_faults]
        for _ in range(40):
            src = data.draw(st.sampled_from(healthy))
            dst = data.draw(st.sampled_from(healthy))
            if src != dst:
                path = router.route_path(src, dst)
                assert path[-1] == dst

    @given(st.integers(0, 5_000))
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_layered_cdg_acyclic(self, seed):
        from repro.analysis import assert_deadlock_free
        from repro.faults import FaultGenerationError, generate_overlapping_pattern
        from repro.sim import SimNetwork, SimulationConfig

        network = Torus(8, 2)
        try:
            scenario = generate_overlapping_pattern(
                network, 2, random.Random(seed), max_tries=3_000
            )
        except FaultGenerationError:
            return
        config = SimulationConfig(
            topology="torus", radix=8, dims=2, faults=scenario.faults,
            allow_overlapping_rings=True,
        )
        assert_deadlock_free(SimNetwork(config), include_sharing=True)

    @given(st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None)
    def test_layers_are_proper_coloring(self, seed):
        from repro.faults import (
            FaultGenerationError,
            generate_overlapping_pattern,
            ring_overlap_graph,
        )

        network = Torus(10, 2)
        try:
            scenario = generate_overlapping_pattern(
                network, 3, random.Random(seed), max_tries=3_000
            )
        except FaultGenerationError:
            return
        graph = ring_overlap_graph(scenario.ring_index)
        for region, neighbors in graph.items():
            for neighbor in neighbors:
                assert scenario.region_layers[region] != scenario.region_layers[neighbor]
